package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/goetsc/goetsc/internal/bench"
	"github.com/goetsc/goetsc/internal/core"
	"github.com/goetsc/goetsc/internal/persist"
	"github.com/goetsc/goetsc/internal/synth"
	ts "github.com/goetsc/goetsc/internal/timeseries"
)

// trainedECTS fits one small ECTS model for handler tests; the sync.Once
// keeps the fixture cheap across tests.
var fixtureOnce sync.Once
var fixtureModel core.EarlyClassifier
var fixtureData *ts.Dataset

func fixture(t *testing.T) (core.EarlyClassifier, *ts.Dataset) {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureData = synth.Dataset("synth-uni", 1, 2, 24, 40, 7)
		f := bench.AlgorithmsByName(fixtureData.Name, bench.Fast, 1, []string{"ECTS"})[0]
		fixtureModel = f.New()
		if err := fixtureModel.Fit(fixtureData); err != nil {
			panic(err)
		}
	})
	return fixtureModel, fixtureData
}

// newTestServer returns a started httptest server with the ECTS fixture
// loaded under the name "ects".
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	algo, d := fixture(t)
	s := New(cfg)
	meta := persist.Meta{Dataset: d.Name, Length: d.MaxLength(), NumVars: d.NumVars(), NumClasses: d.NumClasses()}
	if err := s.AddModel("ects", algo, meta); err != nil {
		t.Fatalf("add model: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
}

func TestHealthAndReady(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
}

func TestReadyzBeforeModels(t *testing.T) {
	s := New(Config{})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	resp, err := http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with no models = %d, want 503", resp.StatusCode)
	}
}

func TestModelsListing(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp, err := http.Get(hs.URL + "/v1/models")
	if err != nil {
		t.Fatalf("GET /v1/models: %v", err)
	}
	var got struct {
		Models []ModelInfo `json:"models"`
	}
	decodeBody(t, resp, &got)
	if len(got.Models) != 1 || got.Models[0].Name != "ects" || got.Models[0].Algorithm != "ECTS" {
		t.Fatalf("models = %+v, want one ects/ECTS entry", got.Models)
	}
}

func TestClassifyOK(t *testing.T) {
	algo, d := fixture(t)
	_, hs := newTestServer(t, Config{})
	in := d.Instances[0]
	wantLabel, wantConsumed := algo.Classify(in)

	resp := postJSON(t, hs.URL+"/v1/classify", map[string]any{"model": "ects", "values": in.Values})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify = %d, want 200", resp.StatusCode)
	}
	var got struct {
		Label    int  `json:"label"`
		Consumed int  `json:"consumed"`
		Final    bool `json:"final"`
	}
	decodeBody(t, resp, &got)
	if got.Label != wantLabel || got.Consumed != wantConsumed || !got.Final {
		t.Fatalf("classify = %+v, want label %d consumed %d final", got, wantLabel, wantConsumed)
	}
}

func TestClassifyMalformedJSON(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	cases := []string{
		`{"model": "ects", "values": [[1,2`,     // unterminated
		`{"model": "ects", "bogus": true}`,      // unknown field
		`{"model": "ects", "values": []}{}`,     // trailing data
		`{"model": "ects", "values": [[1],[]]}`, // ragged
		`{"model": "ects", "values": []}`,       // empty
	}
	for _, body := range cases {
		resp, err := http.Post(hs.URL+"/v1/classify", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		var got struct {
			Error string `json:"error"`
		}
		decodeBody(t, resp, &got)
		if resp.StatusCode != http.StatusBadRequest || got.Error == "" {
			t.Fatalf("body %q: status %d error %q, want 400 with message", body, resp.StatusCode, got.Error)
		}
	}
}

func TestClassifyUnknownModel(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp := postJSON(t, hs.URL+"/v1/classify", map[string]any{"model": "nope", "values": [][]float64{{1, 2, 3}}})
	var got struct {
		Error string `json:"error"`
	}
	decodeBody(t, resp, &got)
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(got.Error, "nope") {
		t.Fatalf("unknown model: status %d error %q, want 404 naming the model", resp.StatusCode, got.Error)
	}
}

func TestClassifyOversizedBody(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxBodyBytes: 256})
	big := make([]float64, 4096)
	resp := postJSON(t, hs.URL+"/v1/classify", map[string]any{"model": "ects", "values": [][]float64{big}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", resp.StatusCode)
	}
}

func TestSessionLifecycle(t *testing.T) {
	algo, d := fixture(t)
	_, hs := newTestServer(t, Config{})
	in := d.Instances[1]
	wantLabel, wantConsumed := algo.Classify(in)

	// Create.
	resp := postJSON(t, hs.URL+"/v1/sessions", map[string]any{"model": "ects"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create session = %d, want 201", resp.StatusCode)
	}
	var created sessionState
	decodeBody(t, resp, &created)
	if created.SessionID == "" || created.Status != "pending" {
		t.Fatalf("created = %+v, want pending with an id", created)
	}
	base := hs.URL + "/v1/sessions/" + created.SessionID

	// Stream one point at a time until the decision lands.
	var final sessionState
	n := in.Length()
	for i := 0; i < n; i++ {
		batch := make([][]float64, len(in.Values))
		for v := range in.Values {
			batch[v] = in.Values[v][i : i+1]
		}
		resp := postJSON(t, base+"/points", map[string]any{"values": batch, "last": i == n-1})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("points %d = %d, want 200", i, resp.StatusCode)
		}
		decodeBody(t, resp, &final)
		if final.Status == "decided" {
			break
		}
	}
	if final.Status != "decided" || final.Label == nil || final.Consumed == nil {
		t.Fatalf("session never decided: %+v", final)
	}
	if *final.Label != wantLabel || *final.Consumed != wantConsumed {
		t.Fatalf("streamed decision (%d, %d) != offline Classify (%d, %d)",
			*final.Label, *final.Consumed, wantLabel, wantConsumed)
	}

	// GET reports the frozen decision.
	getResp, err := http.Get(base)
	if err != nil {
		t.Fatalf("GET session: %v", err)
	}
	var got sessionState
	decodeBody(t, getResp, &got)
	if got.Status != "decided" || *got.Label != wantLabel {
		t.Fatalf("GET after decision = %+v", got)
	}

	// DELETE closes it; follow-up requests see 404.
	req, _ := http.NewRequest(http.MethodDelete, base, nil)
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE = %d, want 204", delResp.StatusCode)
	}
	for _, probe := range []func() *http.Response{
		func() *http.Response {
			r, err := http.Get(base)
			if err != nil {
				t.Fatal(err)
			}
			return r
		},
		func() *http.Response {
			return postJSON(t, base+"/points", map[string]any{"values": [][]float64{{1}}})
		},
	} {
		r := probe()
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("closed session request = %d, want 404", r.StatusCode)
		}
	}
}

func TestSessionUnknownModel(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp := postJSON(t, hs.URL+"/v1/sessions", map[string]any{"model": "missing"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("create session for unknown model = %d, want 404", resp.StatusCode)
	}
}

func TestSessionLimit(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxSessions: 2})
	for i := 0; i < 2; i++ {
		resp := postJSON(t, hs.URL+"/v1/sessions", map[string]any{"model": "ects"})
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("session %d = %d, want 201", i, resp.StatusCode)
		}
	}
	resp := postJSON(t, hs.URL+"/v1/sessions", map[string]any{"model": "ects"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("session past limit = %d, want 503", resp.StatusCode)
	}
}

// TestConcurrentSessions streams many sessions at once; run under -race
// this proves the per-model classify lock and session bookkeeping are
// sound.
func TestConcurrentSessions(t *testing.T) {
	algo, d := fixture(t)
	_, hs := newTestServer(t, Config{})

	const workers = 8
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			in := d.Instances[w%d.Len()]
			wantLabel, wantConsumed := func() (int, int) {
				// Serialize the reference Classify the same way the server
				// does: the algorithms are not goroutine-safe.
				refMu.Lock()
				defer refMu.Unlock()
				return algo.Classify(in)
			}()

			resp := postJSON(t, hs.URL+"/v1/sessions", map[string]any{"model": "ects"})
			var created sessionState
			decodeBody(t, resp, &created)
			base := hs.URL + "/v1/sessions/" + created.SessionID

			var final sessionState
			half := in.Length() / 2
			for _, step := range []struct {
				lo, hi int
				last   bool
			}{{0, half, false}, {half, in.Length(), true}} {
				batch := make([][]float64, len(in.Values))
				for v := range in.Values {
					batch[v] = in.Values[v][step.lo:step.hi]
				}
				resp := postJSON(t, base+"/points", map[string]any{"values": batch, "last": step.last})
				decodeBody(t, resp, &final)
				if final.Status == "decided" {
					break
				}
			}
			if final.Status != "decided" {
				errCh <- fmt.Errorf("worker %d: session never decided", w)
				return
			}
			if *final.Label != wantLabel || *final.Consumed > wantConsumed {
				// Streaming in two chunks can only decide at chunk
				// boundaries at or after the offline commit point, never
				// with a different label for these prefix-monotone
				// algorithms; equality holds when the commit aligns.
				if *final.Label != wantLabel {
					errCh <- fmt.Errorf("worker %d: label %d != offline %d", w, *final.Label, wantLabel)
					return
				}
			}
			errCh <- nil
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Error(err)
		}
	}
}

var refMu sync.Mutex
