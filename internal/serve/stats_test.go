package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/goetsc/goetsc/internal/obs"
	"github.com/goetsc/goetsc/internal/persist"
)

// journalBuffer is a concurrency-safe sink for the test journal.
type journalBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *journalBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *journalBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// newStatsServer builds a server with a live registry and journal, the
// full stats-plane configuration.
func newStatsServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *obs.Registry, *journalBuffer) {
	t.Helper()
	algo, d := fixture(t)
	jb := &journalBuffer{}
	reg := obs.NewRegistry()
	cfg.Obs = obs.New(obs.Options{Journal: obs.NewJournal(jb), Metrics: reg})
	s := New(cfg)
	meta := persist.Meta{Dataset: d.Name, Length: d.MaxLength(), NumVars: d.NumVars(), NumClasses: d.NumClasses()}
	if err := s.AddModel("ects", algo, meta); err != nil {
		t.Fatalf("add model: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs, reg, jb
}

// accessRecords parses the journal's type=access lines.
func accessRecords(t *testing.T, jb *journalBuffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	sc := bufio.NewScanner(strings.NewReader(jb.String()))
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad journal line %q: %v", sc.Text(), err)
		}
		if rec["type"] == "access" {
			out = append(out, rec)
		}
	}
	return out
}

// TestTraceRoundTripClientToJournal is the header contract: a client
// trace is adopted (same trace ID, fresh server span), echoed on the
// response, and lands on the journal's access record along with model,
// prefix, decision and the wall/queue/classify split.
func TestTraceRoundTripClientToJournal(t *testing.T) {
	algo, d := fixture(t)
	_, hs, _, jb := newStatsServer(t, Config{})
	in := d.Instances[0]
	wantLabel, _ := algo.Classify(in)

	client := obs.NewTraceContext()
	body, _ := json.Marshal(map[string]any{"model": "ects", "values": in.Values})
	req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/classify", bytes.NewReader(body))
	req.Header.Set(obs.TraceHeader, client.Header())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	echoed, ok := obs.ParseTraceHeader(resp.Header.Get(obs.TraceHeader))
	if !ok {
		t.Fatalf("response trace header %q unparseable", resp.Header.Get(obs.TraceHeader))
	}
	if echoed.Trace != client.Trace {
		t.Fatalf("echoed trace %s != client trace %s", echoed.Trace, client.Trace)
	}
	if echoed.Span == client.Span {
		t.Fatal("server must mint its own span, not reuse the client's")
	}

	recs := accessRecords(t, jb)
	if len(recs) != 1 {
		t.Fatalf("access records = %d, want 1", len(recs))
	}
	rec := recs[0]
	if rec["trace"] != client.Trace.String() {
		t.Fatalf("journal trace %v != client trace %s", rec["trace"], client.Trace)
	}
	if rec["parent_span"] != client.Span.String() {
		t.Fatalf("journal parent_span %v != client span %s", rec["parent_span"], client.Span)
	}
	if rec["span"] != echoed.Span.String() {
		t.Fatalf("journal span %v != echoed span %s", rec["span"], echoed.Span)
	}
	if rec["route"] != "classify" || rec["model"] != "ects" || rec["status"] != float64(200) {
		t.Fatalf("access record fields wrong: %+v", rec)
	}
	if rec["decision"] != float64(wantLabel) {
		t.Fatalf("journal decision %v != offline label %d", rec["decision"], wantLabel)
	}
	if rec["prefix"] != float64(in.Length()) {
		t.Fatalf("journal prefix %v != length %d", rec["prefix"], in.Length())
	}
	for _, k := range []string{"wall_ms", "queue_ms", "classify_ms"} {
		if _, ok := rec[k].(float64); !ok {
			t.Fatalf("access record missing timing %q: %+v", k, rec)
		}
	}
}

// TestTraceMintedWhenAbsent: untraced requests still get a valid trace
// echoed, so clients can correlate unconditionally.
func TestTraceMintedWhenAbsent(t *testing.T) {
	_, hs, _, _ := newStatsServer(t, Config{})
	resp, err := http.Get(hs.URL + "/v1/models")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if _, ok := obs.ParseTraceHeader(resp.Header.Get(obs.TraceHeader)); !ok {
		t.Fatalf("untraced request: response header %q is not a valid trace", resp.Header.Get(obs.TraceHeader))
	}
}

// streamFixture streams instance idx through a session in two chunks
// and returns the number of /points batches sent.
func streamFixture(t *testing.T, hs *httptest.Server, idx int) int {
	t.Helper()
	_, d := fixture(t)
	in := d.Instances[idx%d.Len()]
	resp := postJSON(t, hs.URL+"/v1/sessions", map[string]any{"model": "ects"})
	var st sessionState
	decodeBody(t, resp, &st)
	base := hs.URL + "/v1/sessions/" + st.SessionID
	half := in.Length() / 2
	batches := 0
	for _, step := range []struct {
		lo, hi int
		last   bool
	}{{0, half, false}, {half, in.Length(), true}} {
		batch := make([][]float64, len(in.Values))
		for v := range in.Values {
			batch[v] = in.Values[v][step.lo:step.hi]
		}
		resp := postJSON(t, base+"/points", map[string]any{"values": batch, "last": step.last})
		decodeBody(t, resp, &st)
		batches++
		if st.Status == "decided" {
			break
		}
	}
	if st.Status != "decided" {
		t.Fatalf("fixture session never decided: %+v", st)
	}
	req, _ := http.NewRequest(http.MethodDelete, base, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	dresp.Body.Close()
	return batches
}

// TestStatsSnapshotEndpoint drives one-shot and streamed traffic, then
// checks /v1/stats against exactly-known counts and invariant ranges.
func TestStatsSnapshotEndpoint(t *testing.T) {
	_, d := fixture(t)
	_, hs, _, _ := newStatsServer(t, Config{})

	const oneshots = 3
	for i := 0; i < oneshots; i++ {
		in := d.Instances[i%d.Len()]
		resp := postJSON(t, hs.URL+"/v1/classify", map[string]any{"model": "ects", "values": in.Values})
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	batches := streamFixture(t, hs, 1)

	resp, err := http.Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET /v1/stats: %v", err)
	}
	var snap StatsSnapshot
	decodeBody(t, resp, &snap)

	cls, ok := snap.Endpoints["classify"]
	if !ok {
		t.Fatalf("no classify endpoint in %v", snap.Endpoints)
	}
	for _, span := range []string{"10s", "1m", "5m"} {
		w, ok := cls.Windows[span]
		if !ok || w.Count != oneshots {
			t.Fatalf("classify %s window = %+v, want count %d", span, w, oneshots)
		}
		if w.P50Ms <= 0 || w.P99Ms < w.P50Ms {
			t.Fatalf("classify %s quantiles degenerate: %+v", span, w)
		}
		slo, ok := cls.SLO[span]
		if !ok || slo.Total != oneshots {
			t.Fatalf("classify %s SLO = %+v, want total %d", span, slo, oneshots)
		}
	}
	if w := snap.Endpoints["session_points"].Windows["5m"]; int(w.Count) != batches {
		t.Fatalf("session_points 5m count = %d, want %d", w.Count, batches)
	}

	q, ok := snap.Models["ects"]
	if !ok {
		t.Fatalf("no ects model in %v", snap.Models)
	}
	wantDecisions := uint64(oneshots + 1)
	if q.Decisions != wantDecisions {
		t.Fatalf("decisions = %d, want %d", q.Decisions, wantDecisions)
	}
	if q.EarlinessAtCommit <= 0 || q.EarlinessAtCommit > 1 {
		t.Fatalf("earliness-at-commit %v outside (0,1]", q.EarlinessAtCommit)
	}
	if q.PointBatches != uint64(batches) {
		t.Fatalf("point batches = %d, want %d", q.PointBatches, batches)
	}
	if q.PendingAnswers != uint64(batches)-1 {
		t.Fatalf("pending answers = %d, want %d (all but the deciding batch)", q.PendingAnswers, batches-1)
	}
	wantPending := float64(batches-1) / float64(batches)
	if diff := q.PendingRate - wantPending; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("pending rate = %v, want %v", q.PendingRate, wantPending)
	}
	var histTotal uint64
	for _, pb := range q.PrefixHist {
		histTotal += pb.Count
	}
	if histTotal != wantDecisions {
		t.Fatalf("prefix histogram total = %d, want %d", histTotal, wantDecisions)
	}
	if q.QualityHM < 0 || q.QualityHM > 1 {
		t.Fatalf("quality HM %v outside [0,1]", q.QualityHM)
	}
	if q.Sessions.Created != 1 || q.Sessions.Decided != 1 || q.Sessions.Closed != 1 {
		t.Fatalf("session lifecycle = %+v, want created/decided/closed = 1", q.Sessions)
	}
	if snap.Sessions.Created != 1 || snap.Sessions.Advanced != uint64(batches) {
		t.Fatalf("global lifecycle = %+v", snap.Sessions)
	}
}

// TestMetricsEndpoint: /metrics serves Prometheus text with the serving
// instruments, including the split queue/classify histograms and the
// quality gauges.
func TestMetricsEndpoint(t *testing.T) {
	_, d := fixture(t)
	_, hs, _, _ := newStatsServer(t, Config{})
	in := d.Instances[0]
	resp := postJSON(t, hs.URL+"/v1/classify", map[string]any{"model": "ects", "values": in.Values})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mresp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q, want text/plain", ct)
	}
	body, _ := io.ReadAll(mresp.Body)
	text := string(body)
	for _, want := range []string{
		`etsc_serve_requests_total{route="classify"} 1`,
		`etsc_serve_queue_wait_seconds_count{route="classify"} 1`,
		`etsc_serve_classify_seconds_count{route="classify"} 1`,
		`etsc_serve_earliness_at_commit{model="ects"}`,
		`etsc_serve_quality_hm{model="ects"}`,
		`etsc_serve_decision_prefix_ratio_count{model="ects"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestDashboard renders without error and carries the model table.
func TestDashboard(t *testing.T) {
	_, hs, _, _ := newStatsServer(t, Config{})
	resp, err := http.Get(hs.URL + "/debug/etsc")
	if err != nil {
		t.Fatalf("GET /debug/etsc: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dashboard status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content type %q, want text/html", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{"etsc-serve", "ects", "Endpoints", "quality"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("dashboard missing %q", want)
		}
	}
}

// TestEvictionLifecycle: idle sessions bump the evicted counters.
func TestEvictionLifecycle(t *testing.T) {
	s, hs, _, _ := newStatsServer(t, Config{SessionTTL: time.Nanosecond})
	resp := postJSON(t, hs.URL+"/v1/sessions", map[string]any{"model": "ects"})
	resp.Body.Close()
	time.Sleep(10 * time.Millisecond)
	if n := s.EvictIdleSessions(); n != 1 {
		t.Fatalf("evicted %d sessions, want 1", n)
	}
	snap := s.Stats()
	if snap.Models["ects"].Sessions.Evicted != 1 || snap.Sessions.Evicted != 1 {
		t.Fatalf("evicted counters = %+v / %+v", snap.Models["ects"].Sessions, snap.Sessions)
	}
}

// TestMetaRoutesStayOutOfStats: scraping the stats plane must not feed
// the windows, the SLO or the access journal.
func TestMetaRoutesStayOutOfStats(t *testing.T) {
	s, hs, _, jb := newStatsServer(t, Config{})
	for _, path := range []string{"/v1/stats", "/metrics", "/debug/etsc", "/healthz"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	snap := s.Stats()
	for _, meta := range []string{"stats", "metrics", "dashboard", "healthz"} {
		if _, ok := snap.Endpoints[meta]; ok {
			t.Fatalf("meta route %q leaked into endpoint stats", meta)
		}
	}
	if recs := accessRecords(t, jb); len(recs) != 0 {
		t.Fatalf("meta routes wrote %d access records, want 0", len(recs))
	}
}
