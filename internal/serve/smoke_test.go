package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"github.com/goetsc/goetsc/internal/bench"
	"github.com/goetsc/goetsc/internal/core"
	"github.com/goetsc/goetsc/internal/persist"
	"github.com/goetsc/goetsc/internal/synth"
	ts "github.com/goetsc/goetsc/internal/timeseries"
)

// TestServeSmoke is the end-to-end parity check the Makefile's
// serve-smoke target runs under the race detector: every algorithm is
// trained on three synthetic datasets (one multivariate), persisted to
// disk, loaded into a server, and must reproduce the in-process
// Classify decisions over both the one-shot endpoint and the streaming
// session protocol.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test trains every algorithm")
	}
	datasets := []*ts.Dataset{
		synth.Dataset("smoke-uni2", 1, 2, 24, 40, 3),
		synth.Dataset("smoke-uni3", 1, 3, 27, 40, 5),
		synth.Dataset("smoke-multi", 2, 2, 24, 40, 9),
	}
	names := append(bench.AlgorithmNames(), "SR")

	for _, d := range datasets {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			srv := New(Config{})
			reference := map[string]core.EarlyClassifier{}

			// Train, persist, and serve every algorithm from its file.
			factories := bench.AlgorithmsByName(d.Name, bench.Fast, 1, names)
			if len(factories) != len(names) {
				t.Fatalf("expected %d factories, got %d", len(names), len(factories))
			}
			for _, f := range factories {
				algo := core.WrapForDataset(f.New, d)
				if err := algo.Fit(d); err != nil {
					t.Fatalf("%s: fit: %v", f.Name, err)
				}
				modelName := strings.ToLower(d.Name + "-" + f.Name)
				path := filepath.Join(dir, modelName+".goetsc")
				meta := persist.Meta{Dataset: d.Name, Length: d.MaxLength(), NumVars: d.NumVars(), NumClasses: d.NumClasses()}
				if err := persist.SaveFile(path, algo, meta); err != nil {
					t.Fatalf("%s: save: %v", f.Name, err)
				}
				reference[modelName] = algo
			}
			loaded, err := srv.LoadDir(dir)
			if err != nil {
				t.Fatalf("load dir: %v", err)
			}
			if len(loaded) != len(names) {
				t.Fatalf("loaded %d models, want %d", len(loaded), len(names))
			}
			hs := httptest.NewServer(srv.Handler())
			defer hs.Close()

			probe := d.Instances
			if len(probe) > 4 {
				probe = probe[:4]
			}
			for modelName, algo := range reference {
				for i, in := range probe {
					wantLabel, wantConsumed := algo.Classify(in)
					if wantConsumed > in.Length() {
						wantConsumed = in.Length()
					}

					gotLabel, gotConsumed := oneShot(t, hs.URL, modelName, in.Values)
					if gotLabel != wantLabel || gotConsumed != wantConsumed {
						t.Errorf("%s instance %d one-shot: served (%d, %d) != offline (%d, %d)",
							modelName, i, gotLabel, gotConsumed, wantLabel, wantConsumed)
					}

					// Chunked streaming must land on the identical decision:
					// the classifier's commit point inside a prefix equals
					// its commit point on the full series.
					gotLabel, gotConsumed = streamed(t, hs.URL, modelName, in.Values, 7)
					if gotLabel != wantLabel || gotConsumed != wantConsumed {
						t.Errorf("%s instance %d streamed: served (%d, %d) != offline (%d, %d)",
							modelName, i, gotLabel, gotConsumed, wantLabel, wantConsumed)
					}
				}
			}
		})
	}
}

// oneShot classifies a full instance through /v1/classify.
func oneShot(t *testing.T, baseURL, model string, values [][]float64) (label, consumed int) {
	t.Helper()
	resp := postJSON(t, baseURL+"/v1/classify", map[string]any{"model": model, "values": values})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify %s = %d", model, resp.StatusCode)
	}
	var got struct {
		Label    int `json:"label"`
		Consumed int `json:"consumed"`
	}
	decodeBody(t, resp, &got)
	return got.Label, got.Consumed
}

// streamed feeds values chunk points at a time through a session and
// returns the final decision.
func streamed(t *testing.T, baseURL, model string, values [][]float64, chunk int) (label, consumed int) {
	t.Helper()
	resp := postJSON(t, baseURL+"/v1/sessions", map[string]any{"model": model})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create session for %s = %d", model, resp.StatusCode)
	}
	var st sessionState
	decodeBody(t, resp, &st)
	base := baseURL + "/v1/sessions/" + st.SessionID
	defer func() {
		req, _ := http.NewRequest(http.MethodDelete, base, nil)
		if r, err := http.DefaultClient.Do(req); err == nil {
			r.Body.Close()
		}
	}()

	n := len(values[0])
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		batch := make([][]float64, len(values))
		for v := range values {
			batch[v] = values[v][lo:hi]
		}
		resp := postJSON(t, base+"/points", map[string]any{"values": batch, "last": hi == n})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("points for %s = %d", model, resp.StatusCode)
		}
		decodeBody(t, resp, &st)
		if st.Status == "decided" {
			break
		}
	}
	if st.Status != "decided" || st.Label == nil || st.Consumed == nil {
		b, _ := json.Marshal(st)
		t.Fatalf("session for %s never decided: %s", model, b)
	}
	return *st.Label, *st.Consumed
}
