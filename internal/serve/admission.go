package serve

import (
	"context"
	"net/http"
	"time"
)

// Admission control and load shedding. The serving plane protects
// itself from overload in three layers, all ahead of the expensive
// classify work:
//
//  1. per-tenant token buckets — a tenant (X-Etsc-Tenant header or
//     ?tenant= query, "default" otherwise) exceeding its refill rate
//     gets 429 with a Retry-After telling it when a token frees;
//  2. a bounded admission queue in front of the worker semaphore —
//     when every classification slot is busy a request may wait, but
//     only QueueDepth requests deep and only QueueTimeout long; past
//     either bound it is shed with 503 instead of piling latency onto
//     everyone behind it;
//  3. drain mode — a terminating server stops admitting (503 +
//     Connection: close) while in-flight requests finish.
//
// Meta routes (health probes, the stats plane) are never shed: an
// overloaded server must stay observable.

// tenantKey resolves the requester's tenant for quota accounting.
func tenantKey(r *http.Request) string {
	if t := r.Header.Get("X-Etsc-Tenant"); t != "" {
		return t
	}
	if t := r.URL.Query().Get("tenant"); t != "" {
		return t
	}
	return "default"
}

// tokenBucket is one tenant's quota state; guarded by tenantLimiter.mu.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// tenantLimiter is a classic token-bucket rate limiter keyed by tenant.
// Buckets refill continuously at rps up to burst; a request costs one
// token. The map is bounded: when it outgrows maxTenants, full buckets
// idle past a minute are swept.
type tenantLimiter struct {
	rps   float64
	burst float64
	now   func() time.Time

	mu      chan struct{} // 1-buffered: a mutex tests can't deadlock on
	buckets map[string]*tokenBucket
}

const maxTenants = 4096

func newTenantLimiter(rps float64, burst int) *tenantLimiter {
	if rps <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = int(2 * rps)
		if burst < 1 {
			burst = 1
		}
	}
	l := &tenantLimiter{
		rps: rps, burst: float64(burst), now: time.Now,
		mu: make(chan struct{}, 1), buckets: map[string]*tokenBucket{},
	}
	return l
}

// allow spends one token from the tenant's bucket. When the bucket is
// empty it reports how long until the next token refills — the 429
// response's Retry-After.
func (l *tenantLimiter) allow(tenant string) (bool, time.Duration) {
	if l == nil {
		return true, 0
	}
	now := l.now()
	l.mu <- struct{}{}
	defer func() { <-l.mu }()
	b, ok := l.buckets[tenant]
	if !ok {
		if len(l.buckets) >= maxTenants {
			l.sweep(now)
		}
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.rps
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rps * float64(time.Second))
	return false, wait
}

// sweep drops full, idle buckets; callers hold the lock.
func (l *tenantLimiter) sweep(now time.Time) {
	for k, b := range l.buckets {
		if b.tokens >= l.burst-1e-9 && now.Sub(b.last) > time.Minute {
			delete(l.buckets, k)
		}
	}
}

// acquire reserves one classification slot. The fast path takes a free
// slot immediately; otherwise the request enters the bounded admission
// queue and is shed (503) when the queue is full, when it has waited
// QueueTimeout, or when its own deadline/client is gone. This keeps the
// latency of *admitted* requests flat under any offered load: the worst
// case added wait is QueueTimeout, never an unbounded backlog.
func (s *Server) acquire(r *http.Request) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.QueueDepth) {
		s.queued.Add(-1)
		s.shed(shedOverload)
		return errOverloaded("admission queue full")
	}
	defer s.queued.Add(-1)
	timer := time.NewTimer(s.cfg.QueueTimeout)
	defer timer.Stop()
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-timer.C:
		s.shed(shedOverload)
		return errOverloaded("queued longer than the admission deadline")
	case <-r.Context().Done():
		if r.Context().Err() == context.DeadlineExceeded {
			s.shed(shedOverload)
		}
		return r.Context().Err()
	}
}

func (s *Server) release() { <-s.sem }

// errOverloaded is the load-shedding 503; distinct from quota 429s so
// clients can tell "server is saturated" from "you are over quota".
func errOverloaded(why string) *apiError {
	return errk(http.StatusServiceUnavailable, "overloaded", "server overloaded: %s", why)
}

// Shed reasons index the server's shed counters.
const (
	shedQuota = iota
	shedOverload
	shedDraining
	numShedReasons
)

var shedReasonNames = [numShedReasons]string{"quota", "overload", "draining"}

// shed counts one rejected request by reason (Prometheus + /v1/stats).
func (s *Server) shed(reason int) {
	s.shedCounts[reason].Add(1)
	s.shedProm[reason].Inc()
}

// admit runs the admission checks for one work-plane request: drain
// gate first, then the tenant quota. Returning an error sheds the
// request before any classification state is touched.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) error {
	if s.draining.Load() {
		// A draining server tells clients (and their load balancer) to
		// reconnect elsewhere.
		w.Header().Set("Connection", "close")
		s.shed(shedDraining)
		return errk(http.StatusServiceUnavailable, "draining", "server is draining")
	}
	if ok, wait := s.tenants.allow(tenantKey(r)); !ok {
		s.shed(shedQuota)
		ae := errk(http.StatusTooManyRequests, "quota",
			"tenant %q over rate limit", tenantKey(r))
		ae.retryAfter = wait
		return ae
	}
	return nil
}

// Drain puts the server into drain mode and waits for in-flight
// work-plane requests to finish (bounded by ctx): new work is refused
// with 503 + Connection: close, meta routes keep answering so probes
// see the drain, and a drain_complete event is journaled with the
// in-flight count flushed and the sessions left live. It returns nil
// once the server is idle, or ctx.Err() when the deadline cut the wait
// short.
func (s *Server) Drain(ctx context.Context) error {
	if s.draining.Swap(true) {
		return nil // already draining
	}
	started := time.Now()
	inflight := s.inflightWork.Load()
	s.cfg.Obs.Emit("drain_started", map[string]any{"inflight": inflight})
	var err error
	for s.inflightWork.Load() > 0 {
		select {
		case <-ctx.Done():
			err = ctx.Err()
		case <-time.After(2 * time.Millisecond):
			continue
		}
		break
	}
	s.mu.RLock()
	live := len(s.sessions)
	s.mu.RUnlock()
	s.cfg.Obs.Emit("drain_complete", map[string]any{
		"flushed":       inflight - s.inflightWork.Load(),
		"remaining":     s.inflightWork.Load(),
		"live_sessions": live,
		"wall_ms":       float64(time.Since(started)) / float64(time.Millisecond),
		"clean":         err == nil,
	})
	return err
}

// Draining reports whether Drain has been initiated.
func (s *Server) Draining() bool { return s.draining.Load() }
