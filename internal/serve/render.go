package serve

import (
	"encoding/json"
	"strconv"
)

// Hand-rendered hot-path responses. The two bodies every benchmark and
// load test exercises — the one-shot classify result and the session
// state — are appended into pooled arena buffers instead of going
// through json.Encoder, which allocates per call. The rendered bytes are
// byte-identical to what json.Encoder produced before (map keys sort
// alphabetically, struct fields keep declaration order, Encode appends a
// trailing newline); renderer tests diff against the encoder directly.

// appendJSONString appends s as a JSON string. Plain ASCII — the only
// thing model names, algorithm names, hex session ids and status words
// ever contain — is appended raw; anything that would need escaping
// falls back to encoding/json so the bytes stay identical in the rare
// case too.
func appendJSONString(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x80 || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			b, _ := json.Marshal(s)
			return append(dst, b...)
		}
	}
	dst = append(dst, '"')
	dst = append(dst, s...)
	return append(dst, '"')
}

// renderClassify appends the POST /v1/classify success body: the
// encoding of map[string]any{"model", "algorithm", "label", "consumed",
// "final"} — keys in alphabetical order, as json.Encoder sorts them.
func renderClassify(dst []byte, model, algorithm string, label, consumed int) []byte {
	dst = append(dst, `{"algorithm":`...)
	dst = appendJSONString(dst, algorithm)
	dst = append(dst, `,"consumed":`...)
	dst = strconv.AppendInt(dst, int64(consumed), 10)
	dst = append(dst, `,"final":true,"label":`...)
	dst = strconv.AppendInt(dst, int64(label), 10)
	dst = append(dst, `,"model":`...)
	dst = appendJSONString(dst, model)
	return append(dst, "}\n"...)
}

// renderState appends the session-state body: the encoding of
// sessionState, fields in declaration order, label/consumed omitted
// while pending.
func renderState(dst []byte, id, model string, decided bool, length, label, consumed int) []byte {
	dst = append(dst, `{"session_id":`...)
	dst = appendJSONString(dst, id)
	dst = append(dst, `,"model":`...)
	dst = appendJSONString(dst, model)
	dst = append(dst, `,"status":`...)
	if decided {
		dst = append(dst, `"decided"`...)
	} else {
		dst = append(dst, `"pending"`...)
	}
	dst = append(dst, `,"length":`...)
	dst = strconv.AppendInt(dst, int64(length), 10)
	if decided {
		dst = append(dst, `,"label":`...)
		dst = strconv.AppendInt(dst, int64(label), 10)
		dst = append(dst, `,"consumed":`...)
		dst = strconv.AppendInt(dst, int64(consumed), 10)
	}
	return append(dst, "}\n"...)
}
