package serve

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/goetsc/goetsc/internal/core"
	"github.com/goetsc/goetsc/internal/evict"
	ts "github.com/goetsc/goetsc/internal/timeseries"
)

// session accumulates one streamed time series behind a live
// classification cursor: per-instance scan state (running distances,
// checkpoint verdicts, streak machines) persists here between batches,
// so each batch costs only the new points instead of a full reclassify
// of the prefix. Once the decision is final it is frozen so late points
// cannot change a reported answer.
type session struct {
	id    string
	entry *modelEntry // registry slot: breaker + version history
	model *model      // the version pinned at creation; hot swaps never move it

	mu        sync.Mutex
	values    [][]float64 // [variable][time], grows as points arrive
	cur       core.Cursor // created on the first batch, never serialized
	curNative bool        // native cursors advance without the model lock
	decided   bool
	label     int
	consumed  int
	lastSeen  time.Time
}

// sessionState is the JSON view of a session's progress.
type sessionState struct {
	SessionID string `json:"session_id"`
	Model     string `json:"model"`
	Status    string `json:"status"` // "pending" or "decided"
	Length    int    `json:"length"`
	Label     *int   `json:"label,omitempty"`
	Consumed  *int   `json:"consumed,omitempty"`
}

func (ss *session) state() sessionState {
	st := sessionState{SessionID: ss.id, Model: ss.model.info.Name, Status: "pending"}
	if len(ss.values) > 0 {
		st.Length = len(ss.values[0])
	}
	if ss.decided {
		st.Status = "decided"
		label, consumed := ss.label, ss.consumed
		st.Label, st.Consumed = &label, &consumed
	}
	return st
}

// writeState renders state() by hand from the model's response arena —
// byte-identical to writeJSON of state(), without the encoder or the
// pointer boxing. Callers hold ss.mu (or exclusively own the session).
func (ss *session) writeState(w http.ResponseWriter, status int) error {
	n := 0
	if len(ss.values) > 0 {
		n = len(ss.values[0])
	}
	rb := ss.model.getBuf()
	rb.b = renderState(rb.b[:0], ss.id, ss.model.info.Name, ss.decided, n, ss.label, ss.consumed)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, err := w.Write(rb.b)
	ss.model.bufs.Put(rb)
	return err
}

// NewSessionID returns a 16-byte random hex token — the identifier
// minted for create requests that don't name one. It is exported so the
// fleet router can mint IDs before placement: the rendezvous hash of the
// ID decides the owning replica, so the ID must exist first.
func NewSessionID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("serve: session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

type sessionCreateRequest struct {
	Model string `json:"model"`
	// SessionID optionally names the session instead of letting the
	// server mint one. The fleet router supplies it so session placement
	// is derivable from the ID alone; direct clients normally omit it.
	SessionID string `json:"session_id,omitempty"`
}

// validateSessionID bounds client-supplied session names: short, and
// drawn from the same alphabet minted IDs use (plus '-' and '_') so they
// embed cleanly in paths, journals and metrics labels.
func validateSessionID(id string) error {
	if len(id) > 64 {
		return errf(http.StatusBadRequest, "session_id longer than 64 bytes")
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return errf(http.StatusBadRequest, "session_id may hold only letters, digits, '-' and '_'")
		}
	}
	return nil
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) error {
	var req sessionCreateRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	e, ok := s.entry(req.Model)
	if !ok {
		return errf(http.StatusNotFound, "unknown model %q", req.Model)
	}
	id := req.SessionID
	if id == "" {
		var err error
		if id, err = NewSessionID(); err != nil {
			return err
		}
	} else if err := validateSessionID(id); err != nil {
		return err
	}
	// The session pins the version live at creation: every Advance for
	// its lifetime runs against this *model, so a hot swap mid-stream
	// cannot change a decision already in progress.
	m := e.cur.Load()
	ss := &session{id: id, entry: e, model: m, lastSeen: s.now()}

	s.mu.Lock()
	if _, exists := s.sessions[id]; exists {
		s.mu.Unlock()
		return errk(http.StatusConflict, "session_exists", "session %q already exists", id)
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		return errf(http.StatusServiceUnavailable, "session limit reached (%d live sessions)", s.cfg.MaxSessions)
	}
	s.sessions[id] = ss
	s.mu.Unlock()

	ri := info(r)
	ri.model, ri.session = m.info.Name, id
	s.stats.lifecycle(m.info.Name, evCreated)
	s.cfg.Obs.Emit("session_created", map[string]any{"session": id, "model": m.info.Name})
	return ss.writeState(w, http.StatusCreated)
}

func (s *Server) session(id string) (*session, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ss, ok := s.sessions[id]
	return ss, ok
}

// pointsRequest appends measurements to a streamed series. Values is
// indexed [variable][new time points]; every variable must contribute the
// same number of points. Last marks the series complete, forcing a
// decision on whatever has arrived.
type pointsRequest struct {
	Values [][]float64 `json:"values"`
	Last   bool        `json:"last,omitempty"`
}

func (s *Server) handleSessionPoints(w http.ResponseWriter, r *http.Request) error {
	ss, ok := s.session(r.PathValue("id"))
	if !ok {
		return errf(http.StatusNotFound, "unknown session %q", r.PathValue("id"))
	}
	var req pointsRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	if len(req.Values) == 0 && !req.Last {
		return errf(http.StatusBadRequest, "values must hold at least one variable (or set last)")
	}

	ri := info(r)
	ri.model, ri.session = ss.model.info.Name, ss.id

	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.lastSeen = s.now()
	if ss.decided {
		// The decision is frozen: report it, ignore the extra points.
		// No quality telemetry — nothing was classified.
		ri.label, ri.decided = ss.label, true
		return ss.writeState(w, http.StatusOK)
	}
	if len(req.Values) > 0 {
		if err := appendPoints(&ss.values, req.Values, ss.model.info.NumVars, ss.model.info.Length); err != nil {
			return err
		}
	}
	n := 0
	if len(ss.values) > 0 {
		n = len(ss.values[0])
	}
	if n == 0 {
		return errf(http.StatusBadRequest, "cannot decide an empty series")
	}
	ri.prefix = n

	if err := s.breakerAllow(ss.entry); err != nil {
		return err
	}
	if ss.cur == nil {
		// The cursor aliases the session's value slices: appendPoints
		// only ever appends to the inner slices after the first batch
		// fixed the outer one, which is exactly the growth contract
		// cursors require.
		ss.cur, ss.curNative = core.NewCursor(ss.model.algo, tsInstance(ss.values))
	}
	t0 := time.Now()
	if err := s.acquire(r); err != nil {
		// Shed in the queue, not a model failure: no breaker record.
		return err
	}
	ri.queue = time.Since(t0)
	t1 := time.Now()
	var label, consumed int
	var curDone bool
	cerr := s.runClassify(ss.model.info.Name, func() error {
		if ss.curNative {
			// Native cursors read only shared fitted state; sessions of
			// one model advance concurrently.
			label, consumed, curDone = ss.cur.Advance(n)
		} else {
			// Fallback cursors replay Classify, which may reuse model
			// scratch — same serialization the classic path needed. The
			// deferred unlock keeps the lock safe across a panicking
			// classifier.
			ss.model.mu.Lock()
			defer ss.model.mu.Unlock()
			label, consumed, curDone = ss.cur.Advance(n)
		}
		return nil
	})
	ri.classify = time.Since(t1)
	ri.worked = true
	s.release()
	ss.entry.breaker.record(cerr == nil)
	if cerr != nil {
		return cerr
	}

	// The decision is final only when it cannot change with more data:
	// the cursor froze it (the classifier committed), the classifier
	// committed strictly inside the received prefix, the series reached
	// the model's training length, or the client declared it complete.
	// Otherwise the answer is "pending" — exactly the online semantics
	// the framework's earliness metric measures.
	final := curDone || consumed < n || req.Last || (ss.model.info.Length > 0 && n >= ss.model.info.Length)
	ms := ss.model.stats
	ms.recordBatch(!final)
	s.stats.lifecycle(ss.model.info.Name, evAdvanced)
	if final {
		ss.decided = true
		ss.label = label
		if consumed > n {
			consumed = n
		}
		ss.consumed = consumed
		ri.label, ri.decided = label, true
		ms.recordDecision(consumed, ss.model.info.Length, n)
		s.stats.lifecycle(ss.model.info.Name, evDecided)
		s.cfg.Obs.Emit("session_decided", map[string]any{
			"session": ss.id, "model": ss.model.info.Name,
			"label": label, "consumed": consumed, "length": n,
		})
	} else {
		ri.pending = true
	}
	return ss.writeState(w, http.StatusOK)
}

// appendPoints grows dst by the batch in src, validating shape. dst may
// be empty (the first batch fixes the variable count, and sizes each
// inner slice at the model's training length so a full-length stream
// never reallocates mid-session).
func appendPoints(dst *[][]float64, src [][]float64, wantVars, lengthHint int) error {
	batch := len(src[0])
	for i, v := range src {
		if len(v) != batch {
			return errf(http.StatusBadRequest, "variable %d has %d new points, variable 0 has %d", i, len(v), batch)
		}
	}
	if batch == 0 {
		return errf(http.StatusBadRequest, "values must hold at least one time point")
	}
	if wantVars > 0 && len(src) != wantVars {
		return errf(http.StatusBadRequest, "model expects %d variables, got %d", wantVars, len(src))
	}
	if len(*dst) == 0 {
		*dst = make([][]float64, len(src))
		if lengthHint > 0 {
			for i := range *dst {
				(*dst)[i] = make([]float64, 0, lengthHint)
			}
		}
	} else if len(src) != len(*dst) {
		return errf(http.StatusBadRequest, "session has %d variables, batch has %d", len(*dst), len(src))
	}
	for i := range src {
		(*dst)[i] = append((*dst)[i], src[i]...)
	}
	return nil
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) error {
	ss, ok := s.session(r.PathValue("id"))
	if !ok {
		return errf(http.StatusNotFound, "unknown session %q", r.PathValue("id"))
	}
	ri := info(r)
	ri.model, ri.session = ss.model.info.Name, ss.id
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.decided {
		ri.label, ri.decided = ss.label, true
	}
	return ss.writeState(w, http.StatusOK)
}

func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	s.mu.Lock()
	ss, ok := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if !ok {
		return errf(http.StatusNotFound, "unknown session %q", id)
	}
	ri := info(r)
	ri.model, ri.session = ss.model.info.Name, id
	s.stats.lifecycle(ss.model.info.Name, evClosed)
	s.cfg.Obs.Emit("session_closed", map[string]any{"session": id})
	w.WriteHeader(http.StatusNoContent)
	return nil
}

// EvictIdleSessions drops sessions idle longer than the TTL and returns
// how many were removed. The command binary runs it on a ticker; the
// shared evict.Policy (same helper the ingest subsystem's entity sweep
// uses) resolves the cutoff against the injectable clock.
func (s *Server) EvictIdleSessions() int {
	cutoff := evict.Policy{TTL: s.cfg.SessionTTL, Clock: s.cfg.Clock}.Cutoff()
	s.mu.Lock()
	var evicted []*session
	for id, ss := range s.sessions {
		ss.mu.Lock()
		idle := ss.lastSeen.Before(cutoff)
		ss.mu.Unlock()
		if idle {
			delete(s.sessions, id)
			evicted = append(evicted, ss)
		}
	}
	notify := s.onSessionEvict
	s.mu.Unlock()
	for _, ss := range evicted {
		s.stats.lifecycle(ss.model.info.Name, evEvicted)
		if notify != nil {
			notify(ss.id)
		}
	}
	return len(evicted)
}

// tsInstance adapts the JSON [variable][time] matrix to a classifier
// input. Labels are irrelevant at inference time.
func tsInstance(values [][]float64) ts.Instance {
	return ts.Instance{Values: values}
}
