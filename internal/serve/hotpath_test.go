package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/goetsc/goetsc/internal/persist"
	"github.com/goetsc/goetsc/internal/testenv"
	ts "github.com/goetsc/goetsc/internal/timeseries"
)

// encode is the reference renderer: exactly what writeJSON produced
// before the hand-rendered hot path.
func encode(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

func TestRenderClassifyMatchesEncoder(t *testing.T) {
	cases := []struct {
		model, algorithm string
		label, consumed  int
	}{
		{"ects", "ECTS", 1, 17},
		{"m", "S-MINI", -1, 0},
		{"dataset-POWER_cons.v2", "ECDIRE", 100, 2048},
		{`we"ird\name`, "A<B>&C", 0, 3}, // forces the escape fallback
		{"naïve-été", "\t", 2, 5},       // non-ASCII and control chars
	}
	for _, c := range cases {
		got := renderClassify(nil, c.model, c.algorithm, c.label, c.consumed)
		want := encode(t, map[string]any{
			"model": c.model, "algorithm": c.algorithm,
			"label": c.label, "consumed": c.consumed, "final": true,
		})
		if !bytes.Equal(got, want) {
			t.Errorf("renderClassify(%q, %q, %d, %d)\n got %q\nwant %q",
				c.model, c.algorithm, c.label, c.consumed, got, want)
		}
	}
}

func TestRenderStateMatchesEncoder(t *testing.T) {
	cases := []struct {
		id, model       string
		decided         bool
		length          int
		label, consumed int
	}{
		{"a1b2c3", "ects", false, 0, 0, 0},
		{"a1b2c3", "ects", false, 12, 0, 0},
		{"ffee00112233", "s-mini", true, 24, 3, 17},
		{"id", `q"u<o>t&e`, true, 1, 0, 1}, // escape fallback
	}
	for _, c := range cases {
		st := sessionState{SessionID: c.id, Model: c.model, Status: "pending", Length: c.length}
		if c.decided {
			st.Status = "decided"
			label, consumed := c.label, c.consumed
			st.Label, st.Consumed = &label, &consumed
		}
		got := renderState(nil, c.id, c.model, c.decided, c.length, c.label, c.consumed)
		want := encode(t, st)
		if !bytes.Equal(got, want) {
			t.Errorf("renderState(%+v)\n got %q\nwant %q", c, got, want)
		}
	}
}

// TestClassifyHotPathZeroAlloc gates the post-decode region of POST
// /v1/classify — classify, record the decision, render and write the
// response from the model's arena — at zero allocations per request.
// The handler adds only HTTP header writes and route instrumentation
// around this region.
func TestClassifyHotPathZeroAlloc(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation gates are meaningless under -race")
	}
	algo, d := fixture(t)
	s := New(Config{})
	meta := persist.Meta{Dataset: d.Name, Length: d.MaxLength(), NumVars: d.NumVars(), NumClasses: d.NumClasses()}
	if err := s.AddModel("ects", algo, meta); err != nil {
		t.Fatalf("add model: %v", err)
	}
	m, _ := s.lookup("ects")
	values := [][]float64{d.Instances[0].Values[0]}

	hot := func() {
		label, consumed := m.classify(values)
		m.stats.recordDecision(consumed, m.info.Length, len(values[0]))
		rb := m.getBuf()
		rb.b = renderClassify(rb.b[:0], m.info.Name, m.info.Algorithm, label, consumed)
		if _, err := io.Discard.Write(rb.b); err != nil {
			t.Fatal(err)
		}
		m.bufs.Put(rb)
	}
	hot() // warm the pools
	if allocs := testing.AllocsPerRun(200, hot); allocs != 0 {
		t.Fatalf("classify hot path allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestSessionStateRenderZeroAlloc gates the session response render: a
// poll of a live session must not allocate.
func TestSessionStateRenderZeroAlloc(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation gates are meaningless under -race")
	}
	algo, d := fixture(t)
	s := New(Config{})
	meta := persist.Meta{Dataset: d.Name, Length: d.MaxLength(), NumVars: d.NumVars(), NumClasses: d.NumClasses()}
	if err := s.AddModel("ects", algo, meta); err != nil {
		t.Fatalf("add model: %v", err)
	}
	m, _ := s.lookup("ects")
	ss := &session{id: "0123456789abcdef0123456789abcdef", model: m,
		values: [][]float64{d.Instances[0].Values[0]}, decided: true, label: 1, consumed: 9}
	render := func() {
		rb := m.getBuf()
		rb.b = renderState(rb.b[:0], ss.id, m.info.Name, ss.decided, len(ss.values[0]), ss.label, ss.consumed)
		if _, err := io.Discard.Write(rb.b); err != nil {
			t.Fatal(err)
		}
		m.bufs.Put(rb)
	}
	render()
	if allocs := testing.AllocsPerRun(200, render); allocs != 0 {
		t.Fatalf("session state render allocates %.1f allocs/op, want 0", allocs)
	}
}

// batchAlgo is a fake coalescible classifier that records flush sizes.
type batchAlgo struct {
	mu      sync.Mutex
	batches []int
}

func (b *batchAlgo) Name() string          { return "fake-batch" }
func (b *batchAlgo) Fit(*ts.Dataset) error { return nil }
func (b *batchAlgo) Classify(in ts.Instance) (int, int) {
	return 1, len(in.Values[0])
}

func (b *batchAlgo) ClassifyBatch(instances []ts.Instance, labels, consumed []int) {
	b.mu.Lock()
	b.batches = append(b.batches, len(instances))
	b.mu.Unlock()
	for i, in := range instances {
		labels[i], consumed[i] = 1, len(in.Values[0])
	}
}

func newBatchServer(t *testing.T, cfg Config) (*Server, *batchAlgo, *httptest.Server) {
	t.Helper()
	algo := &batchAlgo{}
	s := New(cfg)
	if err := s.AddModel("batch", algo, persist.Meta{Length: 8, NumVars: 1}); err != nil {
		t.Fatalf("add model: %v", err)
	}
	t.Cleanup(s.Close)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, algo, hs
}

func TestCoalescedClassify(t *testing.T) {
	_, algo, hs := newBatchServer(t, Config{CoalesceWindow: 100 * time.Millisecond, CoalesceMax: 4})
	const reqs = 8
	var wg sync.WaitGroup
	errs := make(chan error, reqs)
	for i := 0; i < reqs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := bytes.NewReader([]byte(`{"model":"batch","values":[[1,2,3,4]]}`))
			resp, err := http.Post(hs.URL+"/v1/classify", "application/json", body)
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, raw)
				return
			}
			var got struct {
				Label    int  `json:"label"`
				Consumed int  `json:"consumed"`
				Final    bool `json:"final"`
			}
			if err := json.Unmarshal(raw, &got); err != nil {
				errs <- fmt.Errorf("decode %q: %v", raw, err)
				return
			}
			if got.Label != 1 || got.Consumed != 4 || !got.Final {
				errs <- fmt.Errorf("got %+v, want label 1 consumed 4 final", got)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	algo.mu.Lock()
	defer algo.mu.Unlock()
	total, maxBatch := 0, 0
	for _, b := range algo.batches {
		total += b
		if b > maxBatch {
			maxBatch = b
		}
		if b > 4 {
			t.Errorf("batch of %d exceeds CoalesceMax 4", b)
		}
	}
	if total != reqs {
		t.Fatalf("batches classified %d requests, want %d (batches: %v)", total, reqs, algo.batches)
	}
	if maxBatch < 2 {
		t.Errorf("no coalescing happened inside a 100ms window: batches %v", algo.batches)
	}
}

func TestServerCloseFlushesAndRejects(t *testing.T) {
	s, _, hs := newBatchServer(t, Config{CoalesceWindow: time.Minute, CoalesceMax: 64})
	done := make(chan error, 1)
	go func() {
		body := bytes.NewReader([]byte(`{"model":"batch","values":[[1,2,3]]}`))
		resp, err := http.Post(hs.URL+"/v1/classify", "application/json", body)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("status %d", resp.StatusCode)
			}
		}
		done <- err
	}()
	// Wait until the job is queued (the batcher would otherwise hold it
	// for the full one-minute window), then close: Close must flush it.
	m, _ := s.lookup("batch")
	deadline := time.Now().Add(5 * time.Second)
	for m.coalesce.queued.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if m.coalesce.queued.Load() == 0 {
		t.Fatal("request never reached the batcher")
	}
	s.Close()
	if err := <-done; err != nil {
		t.Fatalf("flushed request failed: %v", err)
	}
	s.Close() // idempotent

	body := bytes.NewReader([]byte(`{"model":"batch","values":[[1,2,3]]}`))
	resp, err := http.Post(hs.URL+"/v1/classify", "application/json", body)
	if err != nil {
		t.Fatalf("post after close: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("classify after Close = %d, want 503", resp.StatusCode)
	}
}

// f32Algo records whether the server flipped it to float32 serving.
type f32Algo struct {
	batchAlgo
	f32 bool
}

func (f *f32Algo) SetFloat32(on bool) { f.f32 = on }

func TestFloat32Config(t *testing.T) {
	algo := &f32Algo{}
	s := New(Config{Float32: true})
	if err := s.AddModel("m", algo, persist.Meta{NumVars: 1}); err != nil {
		t.Fatalf("add model: %v", err)
	}
	if !algo.f32 {
		t.Fatal("Config.Float32 did not switch the model to float32 kernels")
	}
	s2 := New(Config{})
	algo2 := &f32Algo{}
	if err := s2.AddModel("m", algo2, persist.Meta{NumVars: 1}); err != nil {
		t.Fatalf("add model: %v", err)
	}
	if algo2.f32 {
		t.Fatal("float32 kernels enabled without Config.Float32")
	}
}
