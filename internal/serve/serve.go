// Package serve exposes trained early classifiers over a JSON HTTP API —
// the online half of the ETSC framework. One-shot classification mirrors
// the batch evaluator; streaming sessions mirror the paper's online
// semantics: a client feeds time points incrementally and the server
// answers "pending" until the early classifier commits.
//
// A streamed decision is only reported once it is final: the classifier
// committed strictly inside the data received so far (consumed < length,
// so no padded or truncated tail influenced it — every framework
// algorithm's decision at a prefix depends only on that prefix), or the
// series reached the model's full training length. This makes streamed
// decisions byte-identical to an offline Classify of the complete
// instance, which the load generator asserts.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/goetsc/goetsc/internal/core"
	"github.com/goetsc/goetsc/internal/evict"
	"github.com/goetsc/goetsc/internal/obs"
	"github.com/goetsc/goetsc/internal/persist"
	"github.com/goetsc/goetsc/internal/sched"
)

// Config controls one server instance. The zero value serves with
// sensible limits and no instrumentation.
type Config struct {
	// MaxBodyBytes caps request bodies; larger requests get 413.
	// Default 1 MiB.
	MaxBodyBytes int64
	// RequestTimeout bounds one request's handling. Default 30s.
	RequestTimeout time.Duration
	// SessionTTL evicts idle streaming sessions. Default 10m.
	SessionTTL time.Duration
	// MaxSessions bounds live sessions; creation beyond it gets 503.
	// Default 4096.
	MaxSessions int
	// Workers bounds concurrent classification work. 0 uses the shared
	// scheduler pool's worker count (sched.Shared()).
	Workers int
	// SLOTarget is the per-endpoint latency objective the stats plane
	// evaluates over rolling windows. Default 25ms.
	SLOTarget time.Duration
	// SLOObjective is the fraction of requests that must complete under
	// SLOTarget (the rest is error budget). Default 0.99.
	SLOObjective float64
	// CoalesceWindow, when positive, batches concurrent one-shot
	// /v1/classify requests per model: a request waits up to this long
	// for companions, then the whole batch runs through one
	// core.BatchClassifier call sharing transform scratch. Only models
	// whose classifier implements BatchClassifier coalesce; others keep
	// the direct path. Default 0 (off).
	CoalesceWindow time.Duration
	// CoalesceMax caps one coalesced batch. Default 16.
	CoalesceMax int
	// Float32 switches loaded models with float32-capable kernels
	// (core.Float32Switchable) to the low-precision serving path at
	// registration. Models without such kernels are unaffected. Default
	// off: float64, bit-identical to offline evaluation.
	Float32 bool
	// ReloadAPI enables the model control plane: POST
	// /v1/models/{name}/reload and /rollback. Off by default — hot swap
	// is an operator surface, not a tenant one.
	ReloadAPI bool
	// TenantRPS, when positive, rate-limits work-plane requests per
	// tenant (X-Etsc-Tenant header, ?tenant= query, "default" otherwise)
	// with a token bucket refilled at this rate; over-quota requests get
	// 429 + Retry-After. Default 0: no tenant quotas.
	TenantRPS float64
	// TenantBurst caps a tenant's token bucket. Default 2×TenantRPS.
	TenantBurst int
	// QueueDepth bounds requests waiting for a classification slot;
	// arrivals beyond it are shed with 503. Default 4×Workers.
	QueueDepth int
	// QueueTimeout bounds how long an admitted request may wait for a
	// slot before it is shed with 503 — the knob that keeps admitted
	// latency flat under overload. Default 1s.
	QueueTimeout time.Duration
	// BreakerThreshold is the classify failure rate that opens a model's
	// circuit breaker. 0 means the default 0.5; values outside (0,1]
	// disable breakers.
	BreakerThreshold float64
	// BreakerMinSamples is the window population required before the
	// failure rate can open the breaker. Default 10.
	BreakerMinSamples int
	// BreakerWindow is the failure-rate observation window. Default 10s.
	BreakerWindow time.Duration
	// BreakerCooldown is how long an open breaker rejects before probing
	// half-open. Default 5s.
	BreakerCooldown time.Duration
	// BreakerProbes is the run of half-open successes that re-closes the
	// breaker. Default 3.
	BreakerProbes int
	// ClassifyHook, when set, runs before every classify/advance with the
	// model name — the chaos suite's entry point into the serving path
	// (injected latency, errors, panics). A returned error fails the
	// request with 500 and counts against the model's breaker.
	ClassifyHook func(model string) error
	// Clock overrides the server's time source for session activity
	// stamps and TTL eviction. The ingest subsystem shares the same
	// injectable-clock eviction policy, so chaos tests can drive both
	// sweeps deterministically from one fake clock. nil means time.Now.
	Clock evict.Clock
	// Obs receives request metrics and journal events; nil is a no-op.
	Obs *obs.Collector
}

func (c Config) withDefaults() Config {
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 10 * time.Minute
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 4096
	}
	if c.Workers <= 0 {
		c.Workers = sched.Shared().Workers()
	}
	if c.SLOTarget <= 0 {
		c.SLOTarget = 25 * time.Millisecond
	}
	if c.SLOObjective <= 0 || c.SLOObjective >= 1 {
		c.SLOObjective = 0.99
	}
	if c.CoalesceMax <= 0 {
		c.CoalesceMax = 16
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 0.5
	}
	if c.BreakerMinSamples <= 0 {
		c.BreakerMinSamples = 10
	}
	if c.BreakerWindow <= 0 {
		c.BreakerWindow = 10 * time.Second
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.BreakerProbes <= 0 {
		c.BreakerProbes = 3
	}
	return c
}

// breakerConfig extracts the breaker tuning shared by every model entry.
func (c Config) breakerConfig() breakerConfig {
	return breakerConfig{
		Threshold: c.BreakerThreshold, MinSamples: c.BreakerMinSamples,
		Window: c.BreakerWindow, Cooldown: c.BreakerCooldown, Probes: c.BreakerProbes,
	}
}

// ModelInfo is one entry of the /v1/models listing.
type ModelInfo struct {
	Name       string `json:"name"`
	Algorithm  string `json:"algorithm"`
	Dataset    string `json:"dataset,omitempty"`
	Length     int    `json:"length,omitempty"`
	NumVars    int    `json:"num_vars,omitempty"`
	NumClasses int    `json:"num_classes,omitempty"`
	// Version counts hot swaps: 1 at registration, +1 per reload;
	// rollback re-serves the previous version's number.
	Version int `json:"version,omitempty"`
	// Checksum is the persist envelope's verified FNV-1a trailer in hex;
	// empty for models registered in-memory.
	Checksum string `json:"checksum,omitempty"`
}

// model pairs a loaded classifier with its metadata. Classify
// implementations reuse internal scratch buffers, so classic calls are
// serialized per model. Streaming sessions instead hold a native
// incremental cursor where the algorithm provides one: cursors read only
// shared fitted state and advance lock-free, and their per-instance scan
// state amortizes across batches. One-shot requests stay on the classic
// path — with no batches to amortize over, cursor construction is pure
// overhead.
type model struct {
	info     ModelInfo
	algo     core.EarlyClassifier
	stats    *modelStats // resolved once at registration: no map+mutex on the hot path
	coalesce *batcher    // non-nil only when coalescing is on and algo batches
	mu       sync.Mutex

	// Version provenance, stamped when the registry built this version.
	checksum uint64
	loadedAt time.Time

	// bufs is the model's response arena: pooled render buffers sized at
	// registration so steady-state responses never touch the allocator.
	bufs     sync.Pool
	arenaCap int
}

// respBuf wraps a render buffer so pooling it doesn't re-box the slice
// header on every Put.
type respBuf struct{ b []byte }

func (m *model) getBuf() *respBuf {
	if rb, _ := m.bufs.Get().(*respBuf); rb != nil {
		return rb
	}
	return &respBuf{b: make([]byte, 0, m.arenaCap)}
}

// classify answers a one-shot request through the serialized classic path.
func (m *model) classify(values [][]float64) (label, consumed int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.algo.Classify(tsInstance(values))
}

// writeClassify renders and writes the one-shot response from the
// model's arena — byte-identical to the json.Encoder output it replaced.
func (m *model) writeClassify(w http.ResponseWriter, label, consumed int) error {
	rb := m.getBuf()
	rb.b = renderClassify(rb.b[:0], m.info.Name, m.info.Algorithm, label, consumed)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, err := w.Write(rb.b)
	m.bufs.Put(rb)
	return err
}

// Server routes the JSON API. Create with New, register models with
// AddModel/LoadFile/LoadDir, then mount Handler.
type Server struct {
	cfg     Config
	sem     chan struct{} // bounds concurrent classification work
	tenants *tenantLimiter

	mu       sync.RWMutex
	models   map[string]*modelEntry
	sessions map[string]*session
	ready    atomic.Bool

	stats *serverStats

	// Admission/drain state: queued counts requests waiting in the
	// admission queue, inflightWork counts admitted work-plane requests
	// (Drain waits on it), draining flips once and never back.
	queued       atomic.Int64
	inflightWork atomic.Int64
	draining     atomic.Bool

	// Shed accounting: the atomics are the /v1/stats truth (they work
	// with no metrics registry configured); shedProm mirrors them into
	// Prometheus. Reload/rollback counters live per entry; these are the
	// fleet-level Prometheus aggregates.
	shedCounts   [numShedReasons]atomic.Uint64
	shedProm     [numShedReasons]*obs.Counter
	reloadOK     *obs.Counter
	reloadFailed *obs.Counter
	rollbacks    *obs.Counter

	// reqPool recycles decoded one-shot request bodies; encoding/json
	// reuses the retained Values capacity, so steady-state decodes stop
	// growing fresh matrices per request.
	reqPool   sync.Pool
	closeOnce sync.Once

	// onSessionEvict, when set, observes TTL evictions (not client
	// closes): the fleet router registers itself here so an evicted
	// session also frees its hash-slot pin. Guarded by mu.
	onSessionEvict func(sessionID string)
}

// SetOnSessionEvict registers fn to run (outside the server's locks)
// for every session dropped by EvictIdleSessions.
func (s *Server) SetOnSessionEvict(fn func(sessionID string)) {
	s.mu.Lock()
	s.onSessionEvict = fn
	s.mu.Unlock()
}

// New returns an empty server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Obs.Registry()
	s := &Server{
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.Workers),
		tenants:  newTenantLimiter(cfg.TenantRPS, cfg.TenantBurst),
		models:   map[string]*modelEntry{},
		sessions: map[string]*session{},
		stats:    newServerStats(reg, cfg.SLOTarget, cfg.SLOObjective),
	}
	for i, reason := range shedReasonNames {
		s.shedProm[i] = reg.Counter("etsc_serve_shed_total",
			"Requests shed before classification, by reason.",
			obs.Label{Key: "reason", Value: reason})
	}
	s.reloadOK = reg.Counter("etsc_serve_reloads_total",
		"Successful model hot reloads.")
	s.reloadFailed = reg.Counter("etsc_serve_reload_failures_total",
		"Rejected model reloads — validation failed, old model kept serving.")
	s.rollbacks = reg.Counter("etsc_serve_rollbacks_total",
		"Model rollbacks to the retained previous version.")
	return s
}

// now reads the configured clock — time.Now unless a test injected a
// fake clock to drive session eviction deterministically.
func (s *Server) now() time.Time { return s.cfg.Clock.Now() }

// Stats snapshots the live stats plane — what GET /v1/stats serves.
func (s *Server) Stats() StatsSnapshot {
	snap := s.stats.Snapshot()
	snap.Resilience = s.resilienceSnapshot()
	return snap
}

// AddModel registers a trained classifier under name.
func (s *Server) AddModel(name string, algo core.EarlyClassifier, meta persist.Meta) error {
	return s.addModel(name, algo, meta, "", 0)
}

// addModel creates the registry entry for a new model name at version 1.
func (s *Server) addModel(name string, algo core.EarlyClassifier, meta persist.Meta,
	source string, checksum uint64) error {
	if name == "" || algo == nil {
		return fmt.Errorf("serve: model name and classifier are required")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.models[name]; exists {
		return fmt.Errorf("serve: model %q already loaded", name)
	}
	e := &modelEntry{
		name:   name,
		source: source,
		// Pre-create stats so /v1/stats lists idle models too; versions of
		// one name share them, keeping quality telemetry continuous.
		stats:   s.stats.model(name),
		breaker: newBreaker(name, s.cfg.breakerConfig(), s.cfg.Obs.Registry(), s.cfg.Obs.Emit),
	}
	e.cur.Store(s.newModel(name, algo, meta, 1, checksum, e.stats))
	s.models[name] = e
	s.ready.Store(true)
	s.cfg.Obs.Emit("model_loaded", map[string]any{
		"model": name, "algorithm": algo.Name(), "dataset": meta.Dataset,
	})
	return nil
}

// Close stops background work (per-model coalescing batchers), flushing
// any queued requests first. The server must not take new requests after
// Close; it is safe to call more than once.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.mu.RLock()
		var batchers []*batcher
		for _, e := range s.models {
			if m := e.cur.Load(); m != nil && m.coalesce != nil {
				batchers = append(batchers, m.coalesce)
			}
			e.ctl.Lock()
			if e.prev != nil && e.prev.coalesce != nil {
				batchers = append(batchers, e.prev.coalesce)
			}
			e.ctl.Unlock()
		}
		s.mu.RUnlock()
		for _, b := range batchers {
			b.stop()
		}
	})
}

// LoadFile loads one persisted model; its name is the file's base name
// without extension. The path is remembered as the entry's source so a
// bodyless reload re-reads it.
func (s *Server) LoadFile(path string) (string, error) {
	algo, meta, fi, err := persist.LoadFileInfo(path)
	if err != nil {
		return "", err
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return name, s.addModel(name, algo, meta, path, fi.Checksum)
}

// LoadDir loads every *.goetsc file in dir, returning the loaded names.
func (s *Server) LoadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".goetsc") {
			continue
		}
		name, err := s.LoadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return names, err
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Models lists the live version of every loaded model sorted by name.
func (s *Server) Models() []ModelInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ModelInfo, 0, len(s.models))
	for _, e := range s.models {
		out = append(out, e.cur.Load().info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// metaRoutes are the stats plane's own endpoints plus health probes:
// they are traced and counted but kept out of the rolling windows, SLO
// evaluation and the access journal, so scraping the stats never skews
// the stats. They are also never shed: an overloaded or draining server
// must stay observable.
var metaRoutes = map[string]bool{
	"healthz": true, "readyz": true,
	"metrics": true, "stats": true, "dashboard": true,
}

// workRoutes go through admission control (drain gate, tenant quota) and
// the in-flight accounting Drain waits on. The control plane
// (model_reload/model_rollback) is an operator surface: exempt from
// tenant quotas and still usable mid-incident.
var workRoutes = map[string]bool{
	"models": true, "classify": true,
	"session_create": true, "session_points": true,
	"session_get": true, "session_close": true,
}

// Handler returns the API handler with per-request deadlines applied.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.wrap("healthz", s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.wrap("readyz", s.handleReadyz))
	mux.HandleFunc("GET /metrics", s.wrap("metrics", s.handleMetrics))
	mux.HandleFunc("GET /v1/stats", s.wrap("stats", s.handleStats))
	mux.HandleFunc("GET /debug/etsc", s.wrap("dashboard", s.handleDashboard))
	mux.HandleFunc("GET /v1/models", s.wrap("models", s.handleModels))
	mux.HandleFunc("POST /v1/classify", s.wrap("classify", s.handleClassify))
	mux.HandleFunc("POST /v1/sessions", s.wrap("session_create", s.handleSessionCreate))
	mux.HandleFunc("POST /v1/sessions/{id}/points", s.wrap("session_points", s.handleSessionPoints))
	mux.HandleFunc("GET /v1/sessions/{id}", s.wrap("session_get", s.handleSessionGet))
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.wrap("session_close", s.handleSessionClose))
	if s.cfg.ReloadAPI {
		mux.HandleFunc("POST /v1/models/{name}/reload", s.wrap("model_reload", s.handleModelReload))
		mux.HandleFunc("POST /v1/models/{name}/rollback", s.wrap("model_rollback", s.handleModelRollback))
	}
	return http.TimeoutHandler(mux, s.cfg.RequestTimeout, `{"error":"request deadline exceeded"}`)
}

// apiError carries an HTTP status with its message, an optional
// machine-readable kind rendered into the JSON body, and an optional
// Retry-After hint for 429/503 responses.
type apiError struct {
	status     int
	msg        string
	kind       string
	retryAfter time.Duration
}

func (e *apiError) Error() string { return e.msg }

func errf(status int, format string, args ...any) *apiError {
	return &apiError{status: status, msg: fmt.Sprintf(format, args...)}
}

// errk is errf with a machine-readable kind ("quota", "overloaded",
// "breaker_open", the reload failure taxonomy, …).
func errk(status int, kind, format string, args ...any) *apiError {
	return &apiError{status: status, msg: fmt.Sprintf(format, args...), kind: kind}
}

// retryAfterSeconds renders a Retry-After header value: whole seconds,
// rounded up, at least 1.
func retryAfterSeconds(d time.Duration) string {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// wrap instruments one route: trace resolution and echo, request/error
// counters, latency/queue/classify histograms, the in-flight gauge, the
// rolling windows + SLO tracker, the access journal, and uniform JSON
// error rendering. Route-level instruments resolve once, at Handler
// build, so per-request work is counter bumps and window observes.
func (s *Server) wrap(route string, h func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	reg := s.cfg.Obs.Registry()
	routeLbl := obs.Label{Key: "route", Value: route}
	requests := reg.Counter("etsc_serve_requests_total", "Requests by route.", routeLbl)
	gauge := reg.Gauge("etsc_serve_inflight", "Requests currently being handled.")
	// Sub-millisecond buckets: the incremental cursors put session
	// advances well under the old DurationBuckets' first bound.
	latHist := reg.Histogram("etsc_serve_latency_seconds", "Request handling latency by route.",
		obs.ServeBuckets, routeLbl)
	tracked := !metaRoutes[route]
	work := workRoutes[route]
	var rs *routeStats
	var queueHist, classifyHist *obs.Histogram
	if tracked {
		rs = s.stats.route(route)
		queueHist = reg.Histogram("etsc_serve_queue_wait_seconds",
			"Wait for a classification slot, by route — queueing pressure separated from compute.",
			obs.ServeBuckets, routeLbl)
		classifyHist = reg.Histogram("etsc_serve_classify_seconds",
			"Time inside Classify/Advance, by route — compute separated from queueing.",
			obs.ServeBuckets, routeLbl)
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		requests.Inc()
		gauge.Add(1)
		defer gauge.Add(-1)

		tc, parent, ri, r := traceRequest(w, r)
		sw := &statusWriter{ResponseWriter: w}
		r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
		var err error
		if work {
			err = s.admit(sw, r)
		}
		if err == nil {
			if work {
				s.inflightWork.Add(1)
			}
			err = h(sw, r)
			if work {
				s.inflightWork.Add(-1)
			}
		}
		if err != nil {
			status := http.StatusInternalServerError
			var ae *apiError
			var mbe *http.MaxBytesError
			switch {
			case errors.As(err, &ae):
				status = ae.status
				if ae.retryAfter > 0 {
					sw.Header().Set("Retry-After", retryAfterSeconds(ae.retryAfter))
				}
			case errors.As(err, &mbe):
				status = http.StatusRequestEntityTooLarge
				err = fmt.Errorf("request body exceeds %d bytes", mbe.Limit)
			case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
				status = http.StatusServiceUnavailable
			}
			reg.Counter("etsc_serve_errors_total", "Request errors by route and status.",
				routeLbl, obs.Label{Key: "code", Value: fmt.Sprint(status)}).Inc()
			body := map[string]any{"error": err.Error()}
			if ae != nil && ae.kind != "" {
				body["kind"] = ae.kind
			}
			writeJSON(sw, status, body)
		}
		wall := time.Since(start)
		latHist.Observe(wall.Seconds())
		if tracked {
			rs.observe(wall, sw.Status())
			if ri.worked {
				queueHist.Observe(ri.queue.Seconds())
				classifyHist.Observe(ri.classify.Seconds())
			}
			if s.cfg.Obs.Journal() != nil {
				s.logAccess(route, tc, parent, sw.Status(), wall, ri)
			}
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) error {
	return writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// handleReadyz is the readiness probe: 200 only when the server has
// models, is not draining, and no model is degraded (open circuit
// breaker, or a reload rejected since the last good swap). Degraded
// state answers 503 with a JSON body naming the causes so orchestrators
// stop routing; healthz stays pure liveness.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) error {
	if !s.ready.Load() {
		return errk(http.StatusServiceUnavailable, "no_models", "no models loaded")
	}
	s.mu.RLock()
	entries := make([]*modelEntry, 0, len(s.models))
	for _, e := range s.models {
		entries = append(entries, e)
	}
	s.mu.RUnlock()
	openBreakers := []string{}
	failedReloads := map[string]*reloadFailure{}
	for _, e := range entries {
		if e.breaker.isOpen() {
			openBreakers = append(openBreakers, e.name)
		}
		if f := e.lastReloadErr.Load(); f != nil {
			failedReloads[e.name] = f
		}
	}
	sort.Strings(openBreakers)
	if s.draining.Load() || len(openBreakers) > 0 || len(failedReloads) > 0 {
		return writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "degraded", "draining": s.draining.Load(),
			"open_breakers": openBreakers, "failed_reloads": failedReloads,
			"models": len(entries),
		})
	}
	return writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "models": len(entries)})
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) error {
	return writeJSON(w, http.StatusOK, map[string]any{"models": s.Models()})
}

// classifyRequest is the one-shot request body. Values is indexed
// [variable][time]; a univariate instance is a single inner array.
type classifyRequest struct {
	Model  string      `json:"model"`
	Values [][]float64 `json:"values"`
}

// getClassifyReq hands out a reset pooled request body. Both fields are
// cleared so stale values can never leak into a request that omits them.
func (s *Server) getClassifyReq() *classifyRequest {
	if req, _ := s.reqPool.Get().(*classifyRequest); req != nil {
		req.Model = ""
		req.Values = req.Values[:0]
		return req
	}
	return &classifyRequest{}
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) error {
	req := s.getClassifyReq()
	defer s.reqPool.Put(req)
	if err := decodeJSON(r, req); err != nil {
		return err
	}
	e, ok := s.entry(req.Model)
	if !ok {
		return errf(http.StatusNotFound, "unknown model %q", req.Model)
	}
	// Pin the live version for this whole request; a concurrent hot swap
	// retires it only for requests that resolve after the swap.
	m := e.cur.Load()
	if err := validateValues(req.Values, m.info.NumVars); err != nil {
		return err
	}
	if err := s.breakerAllow(e); err != nil {
		return err
	}
	ri := info(r)
	ri.model = m.info.Name
	var label, consumed int
	var cerr error
	if m.coalesce != nil {
		// Coalesced path: the batcher owns queueing (the shared worker
		// semaphore is taken once per batch), so the whole wait counts as
		// classify time.
		t0 := time.Now()
		cerr = s.runClassify(m.info.Name, func() error {
			var err error
			label, consumed, err = m.coalesce.submit(r.Context(), req.Values)
			return err
		})
		ri.classify = time.Since(t0)
		ri.worked = true
	} else {
		t0 := time.Now()
		if err := s.acquire(r); err != nil {
			// Shed in the queue, not a model failure: no breaker record.
			return err
		}
		ri.queue = time.Since(t0)
		t1 := time.Now()
		cerr = s.runClassify(m.info.Name, func() error {
			label, consumed = m.classify(req.Values)
			return nil
		})
		ri.classify = time.Since(t1)
		ri.worked = true
		s.release()
	}
	e.breaker.record(cerr == nil)
	if cerr != nil {
		return cerr
	}

	n := len(req.Values[0])
	ri.prefix, ri.label, ri.decided = n, label, true
	m.stats.recordDecision(consumed, m.info.Length, n)
	return m.writeClassify(w, label, consumed)
}

// breakerAllow turns an open circuit breaker into a fast 503 with the
// remaining cooldown as Retry-After, before any classify work is queued.
func (s *Server) breakerAllow(e *modelEntry) error {
	ok, wait := e.breaker.allow()
	if ok {
		return nil
	}
	ae := errk(http.StatusServiceUnavailable, "breaker_open",
		"model %q circuit breaker is open", e.name)
	ae.retryAfter = wait
	return ae
}

// runClassify executes one classify/advance with the chaos hook applied
// and panics contained: a classifier that panics fails its own request
// with a 500 (and counts against its breaker) instead of killing the
// process.
func (s *Server) runClassify(model string, fn func() error) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = errk(http.StatusInternalServerError, "classify_panic",
				"model %q: classifier panicked: %v", model, rec)
		}
	}()
	if hook := s.cfg.ClassifyHook; hook != nil {
		if herr := hook(model); herr != nil {
			return errk(http.StatusInternalServerError, "classify_fault",
				"model %q: %v", model, herr)
		}
	}
	return fn()
}

func writeJSON(w http.ResponseWriter, status int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	return json.NewEncoder(w).Encode(v)
}

// decodeJSON parses one JSON body strictly: unknown fields, trailing
// garbage and oversized bodies are errors.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return err
		}
		return errf(http.StatusBadRequest, "malformed request body: %v", err)
	}
	if dec.More() {
		return errf(http.StatusBadRequest, "malformed request body: trailing data")
	}
	return nil
}

// validateValues rejects ragged or empty instances, and a variable count
// that contradicts the model's training shape.
func validateValues(values [][]float64, wantVars int) error {
	if len(values) == 0 {
		return errf(http.StatusBadRequest, "values must hold at least one variable")
	}
	n := len(values[0])
	if n == 0 {
		return errf(http.StatusBadRequest, "values must hold at least one time point")
	}
	for i, v := range values {
		if len(v) != n {
			return errf(http.StatusBadRequest, "variable %d has %d time points, variable 0 has %d", i, len(v), n)
		}
	}
	if wantVars > 0 && len(values) != wantVars {
		return errf(http.StatusBadRequest, "model expects %d variables, got %d", wantVars, len(values))
	}
	return nil
}
