// Package serve exposes trained early classifiers over a JSON HTTP API —
// the online half of the ETSC framework. One-shot classification mirrors
// the batch evaluator; streaming sessions mirror the paper's online
// semantics: a client feeds time points incrementally and the server
// answers "pending" until the early classifier commits.
//
// A streamed decision is only reported once it is final: the classifier
// committed strictly inside the data received so far (consumed < length,
// so no padded or truncated tail influenced it — every framework
// algorithm's decision at a prefix depends only on that prefix), or the
// series reached the model's full training length. This makes streamed
// decisions byte-identical to an offline Classify of the complete
// instance, which the load generator asserts.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/goetsc/goetsc/internal/core"
	"github.com/goetsc/goetsc/internal/obs"
	"github.com/goetsc/goetsc/internal/persist"
	"github.com/goetsc/goetsc/internal/sched"
)

// Config controls one server instance. The zero value serves with
// sensible limits and no instrumentation.
type Config struct {
	// MaxBodyBytes caps request bodies; larger requests get 413.
	// Default 1 MiB.
	MaxBodyBytes int64
	// RequestTimeout bounds one request's handling. Default 30s.
	RequestTimeout time.Duration
	// SessionTTL evicts idle streaming sessions. Default 10m.
	SessionTTL time.Duration
	// MaxSessions bounds live sessions; creation beyond it gets 503.
	// Default 4096.
	MaxSessions int
	// Workers bounds concurrent classification work. 0 uses the shared
	// scheduler pool's worker count (sched.Shared()).
	Workers int
	// SLOTarget is the per-endpoint latency objective the stats plane
	// evaluates over rolling windows. Default 25ms.
	SLOTarget time.Duration
	// SLOObjective is the fraction of requests that must complete under
	// SLOTarget (the rest is error budget). Default 0.99.
	SLOObjective float64
	// CoalesceWindow, when positive, batches concurrent one-shot
	// /v1/classify requests per model: a request waits up to this long
	// for companions, then the whole batch runs through one
	// core.BatchClassifier call sharing transform scratch. Only models
	// whose classifier implements BatchClassifier coalesce; others keep
	// the direct path. Default 0 (off).
	CoalesceWindow time.Duration
	// CoalesceMax caps one coalesced batch. Default 16.
	CoalesceMax int
	// Float32 switches loaded models with float32-capable kernels
	// (core.Float32Switchable) to the low-precision serving path at
	// registration. Models without such kernels are unaffected. Default
	// off: float64, bit-identical to offline evaluation.
	Float32 bool
	// Obs receives request metrics and journal events; nil is a no-op.
	Obs *obs.Collector
}

func (c Config) withDefaults() Config {
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 10 * time.Minute
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 4096
	}
	if c.Workers <= 0 {
		c.Workers = sched.Shared().Workers()
	}
	if c.SLOTarget <= 0 {
		c.SLOTarget = 25 * time.Millisecond
	}
	if c.SLOObjective <= 0 || c.SLOObjective >= 1 {
		c.SLOObjective = 0.99
	}
	if c.CoalesceMax <= 0 {
		c.CoalesceMax = 16
	}
	return c
}

// ModelInfo is one entry of the /v1/models listing.
type ModelInfo struct {
	Name       string `json:"name"`
	Algorithm  string `json:"algorithm"`
	Dataset    string `json:"dataset,omitempty"`
	Length     int    `json:"length,omitempty"`
	NumVars    int    `json:"num_vars,omitempty"`
	NumClasses int    `json:"num_classes,omitempty"`
}

// model pairs a loaded classifier with its metadata. Classify
// implementations reuse internal scratch buffers, so classic calls are
// serialized per model. Streaming sessions instead hold a native
// incremental cursor where the algorithm provides one: cursors read only
// shared fitted state and advance lock-free, and their per-instance scan
// state amortizes across batches. One-shot requests stay on the classic
// path — with no batches to amortize over, cursor construction is pure
// overhead.
type model struct {
	info     ModelInfo
	algo     core.EarlyClassifier
	stats    *modelStats // resolved once at registration: no map+mutex on the hot path
	coalesce *batcher    // non-nil only when coalescing is on and algo batches
	mu       sync.Mutex

	// bufs is the model's response arena: pooled render buffers sized at
	// registration so steady-state responses never touch the allocator.
	bufs     sync.Pool
	arenaCap int
}

// respBuf wraps a render buffer so pooling it doesn't re-box the slice
// header on every Put.
type respBuf struct{ b []byte }

func (m *model) getBuf() *respBuf {
	if rb, _ := m.bufs.Get().(*respBuf); rb != nil {
		return rb
	}
	return &respBuf{b: make([]byte, 0, m.arenaCap)}
}

// classify answers a one-shot request through the serialized classic path.
func (m *model) classify(values [][]float64) (label, consumed int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.algo.Classify(tsInstance(values))
}

// writeClassify renders and writes the one-shot response from the
// model's arena — byte-identical to the json.Encoder output it replaced.
func (m *model) writeClassify(w http.ResponseWriter, label, consumed int) error {
	rb := m.getBuf()
	rb.b = renderClassify(rb.b[:0], m.info.Name, m.info.Algorithm, label, consumed)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, err := w.Write(rb.b)
	m.bufs.Put(rb)
	return err
}

// Server routes the JSON API. Create with New, register models with
// AddModel/LoadFile/LoadDir, then mount Handler.
type Server struct {
	cfg Config
	sem chan struct{} // bounds concurrent classification work

	mu       sync.RWMutex
	models   map[string]*model
	sessions map[string]*session
	ready    atomic.Bool

	stats *serverStats

	// reqPool recycles decoded one-shot request bodies; encoding/json
	// reuses the retained Values capacity, so steady-state decodes stop
	// growing fresh matrices per request.
	reqPool   sync.Pool
	closeOnce sync.Once

	requests *obs.Counter
	inflight *obs.Gauge
}

// New returns an empty server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.Workers),
		models:   map[string]*model{},
		sessions: map[string]*session{},
		stats:    newServerStats(cfg.Obs.Registry(), cfg.SLOTarget, cfg.SLOObjective),
	}
	return s
}

// Stats snapshots the live stats plane — what GET /v1/stats serves.
func (s *Server) Stats() StatsSnapshot { return s.stats.Snapshot() }

// AddModel registers a trained classifier under name.
func (s *Server) AddModel(name string, algo core.EarlyClassifier, meta persist.Meta) error {
	if name == "" || algo == nil {
		return fmt.Errorf("serve: model name and classifier are required")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.models[name]; exists {
		return fmt.Errorf("serve: model %q already loaded", name)
	}
	if s.cfg.Float32 {
		core.EnableFloat32(algo, true)
	}
	m := &model{
		info: ModelInfo{
			Name: name, Algorithm: algo.Name(), Dataset: meta.Dataset,
			Length: meta.Length, NumVars: meta.NumVars, NumClasses: meta.NumClasses,
		},
		algo: algo,
	}
	// Arena sizing: the largest hot response is a session state line; 96
	// bytes covers every fixed token plus two ints, the rest is names/ids.
	m.arenaCap = 96 + len(name) + len(m.info.Algorithm)
	m.stats = s.stats.model(name) // pre-create so /v1/stats lists idle models too
	if s.cfg.CoalesceWindow > 0 {
		if bc, ok := algo.(core.BatchClassifier); ok {
			m.coalesce = newBatcher(m, bc, s.cfg.CoalesceWindow, s.cfg.CoalesceMax, s.sem)
		}
	}
	s.models[name] = m
	s.ready.Store(true)
	s.cfg.Obs.Emit("model_loaded", map[string]any{
		"model": name, "algorithm": algo.Name(), "dataset": meta.Dataset,
	})
	return nil
}

// Close stops background work (per-model coalescing batchers), flushing
// any queued requests first. The server must not take new requests after
// Close; it is safe to call more than once.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.mu.RLock()
		batchers := make([]*batcher, 0, len(s.models))
		for _, m := range s.models {
			if m.coalesce != nil {
				batchers = append(batchers, m.coalesce)
			}
		}
		s.mu.RUnlock()
		for _, b := range batchers {
			b.stop()
		}
	})
}

// LoadFile loads one persisted model; its name is the file's base name
// without extension.
func (s *Server) LoadFile(path string) (string, error) {
	algo, meta, err := persist.LoadFile(path)
	if err != nil {
		return "", err
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return name, s.AddModel(name, algo, meta)
}

// LoadDir loads every *.goetsc file in dir, returning the loaded names.
func (s *Server) LoadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".goetsc") {
			continue
		}
		name, err := s.LoadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return names, err
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Models lists the loaded models sorted by name.
func (s *Server) Models() []ModelInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ModelInfo, 0, len(s.models))
	for _, m := range s.models {
		out = append(out, m.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (s *Server) lookup(name string) (*model, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.models[name]
	return m, ok
}

// acquire reserves one classification slot, bounding concurrent CPU work
// to the scheduler's worker count; it fails when the request is cancelled
// first (deadline or client disconnect).
func (s *Server) acquire(r *http.Request) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-r.Context().Done():
		return r.Context().Err()
	}
}

func (s *Server) release() { <-s.sem }

// metaRoutes are the stats plane's own endpoints plus health probes:
// they are traced and counted but kept out of the rolling windows, SLO
// evaluation and the access journal, so scraping the stats never skews
// the stats.
var metaRoutes = map[string]bool{
	"healthz": true, "readyz": true,
	"metrics": true, "stats": true, "dashboard": true,
}

// Handler returns the API handler with per-request deadlines applied.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.wrap("healthz", s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.wrap("readyz", s.handleReadyz))
	mux.HandleFunc("GET /metrics", s.wrap("metrics", s.handleMetrics))
	mux.HandleFunc("GET /v1/stats", s.wrap("stats", s.handleStats))
	mux.HandleFunc("GET /debug/etsc", s.wrap("dashboard", s.handleDashboard))
	mux.HandleFunc("GET /v1/models", s.wrap("models", s.handleModels))
	mux.HandleFunc("POST /v1/classify", s.wrap("classify", s.handleClassify))
	mux.HandleFunc("POST /v1/sessions", s.wrap("session_create", s.handleSessionCreate))
	mux.HandleFunc("POST /v1/sessions/{id}/points", s.wrap("session_points", s.handleSessionPoints))
	mux.HandleFunc("GET /v1/sessions/{id}", s.wrap("session_get", s.handleSessionGet))
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.wrap("session_close", s.handleSessionClose))
	return http.TimeoutHandler(mux, s.cfg.RequestTimeout, `{"error":"request deadline exceeded"}`)
}

// apiError carries an HTTP status with its message.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func errf(status int, format string, args ...any) *apiError {
	return &apiError{status: status, msg: fmt.Sprintf(format, args...)}
}

// wrap instruments one route: trace resolution and echo, request/error
// counters, latency/queue/classify histograms, the in-flight gauge, the
// rolling windows + SLO tracker, the access journal, and uniform JSON
// error rendering. Route-level instruments resolve once, at Handler
// build, so per-request work is counter bumps and window observes.
func (s *Server) wrap(route string, h func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	reg := s.cfg.Obs.Registry()
	routeLbl := obs.Label{Key: "route", Value: route}
	requests := reg.Counter("etsc_serve_requests_total", "Requests by route.", routeLbl)
	gauge := reg.Gauge("etsc_serve_inflight", "Requests currently being handled.")
	// Sub-millisecond buckets: the incremental cursors put session
	// advances well under the old DurationBuckets' first bound.
	latHist := reg.Histogram("etsc_serve_latency_seconds", "Request handling latency by route.",
		obs.ServeBuckets, routeLbl)
	tracked := !metaRoutes[route]
	var rs *routeStats
	var queueHist, classifyHist *obs.Histogram
	if tracked {
		rs = s.stats.route(route)
		queueHist = reg.Histogram("etsc_serve_queue_wait_seconds",
			"Wait for a classification slot, by route — queueing pressure separated from compute.",
			obs.ServeBuckets, routeLbl)
		classifyHist = reg.Histogram("etsc_serve_classify_seconds",
			"Time inside Classify/Advance, by route — compute separated from queueing.",
			obs.ServeBuckets, routeLbl)
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		requests.Inc()
		gauge.Add(1)
		defer gauge.Add(-1)

		tc, parent, ri, r := traceRequest(w, r)
		sw := &statusWriter{ResponseWriter: w}
		r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
		err := h(sw, r)
		if err != nil {
			status := http.StatusInternalServerError
			var ae *apiError
			var mbe *http.MaxBytesError
			switch {
			case errors.As(err, &ae):
				status = ae.status
			case errors.As(err, &mbe):
				status = http.StatusRequestEntityTooLarge
				err = fmt.Errorf("request body exceeds %d bytes", mbe.Limit)
			case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
				status = http.StatusServiceUnavailable
			}
			reg.Counter("etsc_serve_errors_total", "Request errors by route and status.",
				routeLbl, obs.Label{Key: "code", Value: fmt.Sprint(status)}).Inc()
			writeJSON(sw, status, map[string]any{"error": err.Error()})
		}
		wall := time.Since(start)
		latHist.Observe(wall.Seconds())
		if tracked {
			rs.observe(wall, sw.Status())
			if ri.worked {
				queueHist.Observe(ri.queue.Seconds())
				classifyHist.Observe(ri.classify.Seconds())
			}
			if s.cfg.Obs.Journal() != nil {
				s.logAccess(route, tc, parent, sw.Status(), wall, ri)
			}
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) error {
	return writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) error {
	if !s.ready.Load() {
		return errf(http.StatusServiceUnavailable, "no models loaded")
	}
	return writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "models": len(s.Models())})
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) error {
	return writeJSON(w, http.StatusOK, map[string]any{"models": s.Models()})
}

// classifyRequest is the one-shot request body. Values is indexed
// [variable][time]; a univariate instance is a single inner array.
type classifyRequest struct {
	Model  string      `json:"model"`
	Values [][]float64 `json:"values"`
}

// getClassifyReq hands out a reset pooled request body. Both fields are
// cleared so stale values can never leak into a request that omits them.
func (s *Server) getClassifyReq() *classifyRequest {
	if req, _ := s.reqPool.Get().(*classifyRequest); req != nil {
		req.Model = ""
		req.Values = req.Values[:0]
		return req
	}
	return &classifyRequest{}
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) error {
	req := s.getClassifyReq()
	defer s.reqPool.Put(req)
	if err := decodeJSON(r, req); err != nil {
		return err
	}
	m, ok := s.lookup(req.Model)
	if !ok {
		return errf(http.StatusNotFound, "unknown model %q", req.Model)
	}
	if err := validateValues(req.Values, m.info.NumVars); err != nil {
		return err
	}
	ri := info(r)
	ri.model = m.info.Name
	var label, consumed int
	if m.coalesce != nil {
		// Coalesced path: the batcher owns queueing (the shared worker
		// semaphore is taken once per batch), so the whole wait counts as
		// classify time.
		t0 := time.Now()
		var err error
		label, consumed, err = m.coalesce.submit(r.Context(), req.Values)
		if err != nil {
			return err
		}
		ri.classify = time.Since(t0)
		ri.worked = true
	} else {
		t0 := time.Now()
		if err := s.acquire(r); err != nil {
			return err
		}
		ri.queue = time.Since(t0)
		t1 := time.Now()
		label, consumed = m.classify(req.Values)
		ri.classify = time.Since(t1)
		ri.worked = true
		s.release()
	}

	n := len(req.Values[0])
	ri.prefix, ri.label, ri.decided = n, label, true
	m.stats.recordDecision(consumed, m.info.Length, n)
	return m.writeClassify(w, label, consumed)
}

func writeJSON(w http.ResponseWriter, status int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	return json.NewEncoder(w).Encode(v)
}

// decodeJSON parses one JSON body strictly: unknown fields, trailing
// garbage and oversized bodies are errors.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return err
		}
		return errf(http.StatusBadRequest, "malformed request body: %v", err)
	}
	if dec.More() {
		return errf(http.StatusBadRequest, "malformed request body: trailing data")
	}
	return nil
}

// validateValues rejects ragged or empty instances, and a variable count
// that contradicts the model's training shape.
func validateValues(values [][]float64, wantVars int) error {
	if len(values) == 0 {
		return errf(http.StatusBadRequest, "values must hold at least one variable")
	}
	n := len(values[0])
	if n == 0 {
		return errf(http.StatusBadRequest, "values must hold at least one time point")
	}
	for i, v := range values {
		if len(v) != n {
			return errf(http.StatusBadRequest, "variable %d has %d time points, variable 0 has %d", i, len(v), n)
		}
	}
	if wantVars > 0 && len(values) != wantVars {
		return errf(http.StatusBadRequest, "model expects %d variables, got %d", wantVars, len(values))
	}
	return nil
}
