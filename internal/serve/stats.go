package serve

import (
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/goetsc/goetsc/internal/obs"
)

// The stats plane gives the paper's offline metrics live counterparts.
// Offline, the framework scores an algorithm by the joint
// earliness/accuracy trade-off; online, ground-truth labels never
// arrive, so the serving layer tracks what it can observe: how early
// each model commits (earliness-at-commit), how often streamed answers
// are still pending (pending rate), where in the series decisions land
// (decision-prefix histogram), and whether the endpoints hold their
// latency SLOs. All of it is derivable from rolling windows with fixed
// memory, snapshotted by GET /v1/stats, rendered by GET /debug/etsc,
// and exported in Prometheus form by GET /metrics.

// prefixBuckets is the decision-prefix histogram resolution: decile
// buckets of consumed/length at commit.
const prefixBuckets = 10

// serverStats aggregates per-route latency windows + SLOs and per-model
// online quality. Route stats are created once at Handler build; model
// stats are created under AddModel.
type serverStats struct {
	start        time.Time
	sloTarget    time.Duration
	sloObjective float64
	reg          *obs.Registry

	mu     sync.Mutex
	routes map[string]*routeStats
	models map[string]*modelStats
	global lifecycleCounts
}

type routeStats struct {
	win *obs.Window
	slo *obs.SLO
}

type lifecycleCounts struct {
	Created  uint64 `json:"created"`
	Advanced uint64 `json:"advanced"` // /points batches applied
	Decided  uint64 `json:"decided"`
	Closed   uint64 `json:"closed"`
	Evicted  uint64 `json:"evicted"`
}

// Session lifecycle events, indexing lifecycleNames and the pre-resolved
// per-model Prometheus counters.
const (
	evCreated = iota
	evAdvanced
	evDecided
	evClosed
	evEvicted
	numLifecycleEvents
)

var lifecycleNames = [numLifecycleEvents]string{"created", "advanced", "decided", "closed", "evicted"}

func (l *lifecycleCounts) bump(ev int) {
	switch ev {
	case evCreated:
		l.Created++
	case evAdvanced:
		l.Advanced++
	case evDecided:
		l.Decided++
	case evClosed:
		l.Closed++
	case evEvicted:
		l.Evicted++
	}
}

// modelStats is one model's online quality telemetry. The registry
// instruments mirror the struct so Prometheus scrapers and /v1/stats
// read the same numbers.
type modelStats struct {
	mu             sync.Mutex
	decisions      uint64
	earlyCommits   uint64 // committed strictly before the full length
	earlinessSum   float64
	pendingAnswers uint64
	pointBatches   uint64
	prefixHist     [prefixBuckets]uint64
	sessions       lifecycleCounts

	earlinessGauge *obs.Gauge
	pendingGauge   *obs.Gauge
	hmGauge        *obs.Gauge
	prefixProm     *obs.Histogram
	lifecycleProm  [numLifecycleEvents]*obs.Counter
}

func newServerStats(reg *obs.Registry, sloTarget time.Duration, sloObjective float64) *serverStats {
	return &serverStats{
		start:        time.Now(),
		sloTarget:    sloTarget,
		sloObjective: sloObjective,
		reg:          reg,
		routes:       map[string]*routeStats{},
		models:       map[string]*modelStats{},
	}
}

// maxSpan is the longest reported window; the ring is sized for it.
func maxSpan() time.Duration { return obs.StatsSpans[len(obs.StatsSpans)-1] }

// route returns (creating on first use) one route's window + SLO pair.
func (st *serverStats) route(name string) *routeStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	rs, ok := st.routes[name]
	if !ok {
		rs = &routeStats{
			win: obs.NewWindow(obs.ServeBuckets, time.Second, maxSpan()),
			slo: obs.NewSLO(st.sloTarget, st.sloObjective, time.Second, maxSpan()),
		}
		st.routes[name] = rs
	}
	return rs
}

// model returns (creating on first use) one model's quality telemetry,
// wiring its Prometheus mirrors.
func (st *serverStats) model(name string) *modelStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	ms, ok := st.models[name]
	if !ok {
		lbl := obs.Label{Key: "model", Value: name}
		ms = &modelStats{
			earlinessGauge: st.reg.Gauge("etsc_serve_earliness_at_commit",
				"Mean consumed/length at decision commit, per model (lower = earlier).", lbl),
			pendingGauge: st.reg.Gauge("etsc_serve_pending_rate",
				"Fraction of session point batches answered pending, per model.", lbl),
			hmGauge: st.reg.Gauge("etsc_serve_quality_hm",
				"Harmonic mean of (1-earliness) and the early-commit rate, per model — the live stand-in for the paper's accuracy/earliness HM (accuracy is unobservable online).", lbl),
			prefixProm: st.reg.Histogram("etsc_serve_decision_prefix_ratio",
				"Decision commit points as a fraction of the full series length.", prefixBounds(), lbl),
		}
		for ev, evName := range lifecycleNames {
			ms.lifecycleProm[ev] = st.reg.Counter("etsc_serve_sessions_total",
				"Session lifecycle events by model.",
				obs.Label{Key: "event", Value: evName}, lbl)
		}
		st.models[name] = ms
	}
	return ms
}

func prefixBounds() []float64 {
	b := make([]float64, prefixBuckets)
	for i := range b {
		b[i] = float64(i+1) / prefixBuckets
	}
	return b
}

// observe feeds one finished request into its route's window and SLO.
func (rs *routeStats) observe(d time.Duration, status int) {
	rs.win.Observe(d.Seconds())
	rs.slo.Observe(d, status >= 500)
}

// earlinessRatio is consumed/L clamped to [0,1]; L falls back to the
// observed length when the model's training length is unknown.
func earlinessRatio(consumed, fullLen, observedLen int) float64 {
	l := fullLen
	if l <= 0 {
		l = observedLen
	}
	if l <= 0 || consumed <= 0 {
		return 0
	}
	e := float64(consumed) / float64(l)
	if e > 1 {
		e = 1
	}
	return e
}

// recordDecision folds one committed decision (one-shot or streamed)
// into the model's earliness, prefix-histogram and HM telemetry.
func (ms *modelStats) recordDecision(consumed, fullLen, observedLen int) {
	e := earlinessRatio(consumed, fullLen, observedLen)
	ms.mu.Lock()
	ms.decisions++
	ms.earlinessSum += e
	if e < 1 {
		ms.earlyCommits++
	}
	idx := int(e * prefixBuckets)
	if idx >= prefixBuckets {
		idx = prefixBuckets - 1
	}
	ms.prefixHist[idx]++
	mean := ms.earlinessSum / float64(ms.decisions)
	rate := float64(ms.earlyCommits) / float64(ms.decisions)
	ms.mu.Unlock()

	ms.prefixProm.Observe(e)
	ms.earlinessGauge.Set(mean)
	ms.hmGauge.Set(harmonicQuality(mean, rate))
}

// recordBatch counts one /points batch and whether it answered pending.
func (ms *modelStats) recordBatch(pending bool) {
	ms.mu.Lock()
	ms.pointBatches++
	if pending {
		ms.pendingAnswers++
	}
	rate := float64(ms.pendingAnswers) / float64(ms.pointBatches)
	ms.mu.Unlock()
	ms.pendingGauge.Set(rate)
}

// harmonicQuality is the live stand-in for the paper's harmonic mean of
// accuracy and earliness: with labels unobservable online, the accuracy
// term is replaced by the early-commit rate (the fraction of decisions
// the model committed before exhausting the series), and the earliness
// term is 1-mean(consumed/length). Both land in [0,1]; the harmonic
// mean punishes a model that is early but never commits, or always
// commits but only at the very end.
func harmonicQuality(meanEarliness, earlyCommitRate float64) float64 {
	a, b := 1-meanEarliness, earlyCommitRate
	if a+b == 0 {
		return 0
	}
	return 2 * a * b / (a + b)
}

// lifecycle bumps one session-lifecycle counter for a model and the
// global aggregate. The Prometheus mirror was resolved when the model
// registered, so the request hot path never touches the registry.
func (st *serverStats) lifecycle(model string, ev int) {
	ms := st.model(model)
	ms.mu.Lock()
	ms.sessions.bump(ev)
	ms.mu.Unlock()
	st.mu.Lock()
	st.global.bump(ev)
	st.mu.Unlock()
	ms.lifecycleProm[ev].Inc()
}

// ---- snapshot (GET /v1/stats) ----

// WindowJSON is one rolling window rendered in milliseconds.
type WindowJSON struct {
	Count    uint64  `json:"count"`
	RatePerS float64 `json:"rate_per_s"`
	MeanMs   float64 `json:"mean_ms"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// EndpointStats is one route's windows and SLO verdicts, keyed by span
// ("10s", "1m", "5m").
type EndpointStats struct {
	Windows map[string]WindowJSON    `json:"windows"`
	SLO     map[string]obs.SLOReport `json:"slo"`
}

// PrefixBucket is one decile of the decision-prefix histogram.
type PrefixBucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// ModelQuality is one model's online quality snapshot — the live
// counterpart of the paper's offline earliness/accuracy table.
type ModelQuality struct {
	Decisions         uint64          `json:"decisions"`
	EarlyCommits      uint64          `json:"early_commits"`
	EarlyCommitRate   float64         `json:"early_commit_rate"`
	EarlinessAtCommit float64         `json:"earliness_at_commit"`
	PointBatches      uint64          `json:"point_batches"`
	PendingAnswers    uint64          `json:"pending_answers"`
	PendingRate       float64         `json:"pending_rate"`
	QualityHM         float64         `json:"quality_hm"`
	PrefixHist        []PrefixBucket  `json:"prefix_hist"`
	Sessions          lifecycleCounts `json:"sessions"`
}

// StatsSnapshot is the GET /v1/stats document.
type StatsSnapshot struct {
	Now        time.Time                `json:"now"`
	UptimeS    float64                  `json:"uptime_s"`
	SLOTarget  string                   `json:"slo_target"`
	Endpoints  map[string]EndpointStats `json:"endpoints"`
	Models     map[string]ModelQuality  `json:"models"`
	Sessions   lifecycleCounts          `json:"sessions"`
	Resilience *ResilienceStats         `json:"resilience,omitempty"`
}

// ModelResilience is one model's control-plane view: version history,
// artifact provenance and circuit-breaker state.
type ModelResilience struct {
	Version         int            `json:"version"`
	PreviousVersion int            `json:"previous_version,omitempty"`
	Checksum        string         `json:"checksum,omitempty"`
	Source          string         `json:"source,omitempty"`
	LoadedAt        time.Time      `json:"loaded_at"`
	Reloads         uint64         `json:"reloads"`
	Rollbacks       uint64         `json:"rollbacks"`
	LastReloadError *reloadFailure `json:"last_reload_error,omitempty"`
	Breaker         BreakerStatus  `json:"breaker"`
}

// ResilienceStats is the serving plane's admission/reload/breaker view.
type ResilienceStats struct {
	Draining     bool                       `json:"draining"`
	InflightWork int64                      `json:"inflight_work"`
	QueueDepth   int                        `json:"queue_depth"`
	Queued       int64                      `json:"queued"`
	Shed         map[string]uint64          `json:"shed"`
	Models       map[string]ModelResilience `json:"models"`
}

// resilienceSnapshot assembles the resilience section of /v1/stats.
func (s *Server) resilienceSnapshot() *ResilienceStats {
	rs := &ResilienceStats{
		Draining: s.draining.Load(), InflightWork: s.inflightWork.Load(),
		QueueDepth: s.cfg.QueueDepth, Queued: s.queued.Load(),
		Shed: map[string]uint64{}, Models: map[string]ModelResilience{},
	}
	for i, reason := range shedReasonNames {
		rs.Shed[reason] = s.shedCounts[i].Load()
	}
	s.mu.RLock()
	entries := make([]*modelEntry, 0, len(s.models))
	for _, e := range s.models {
		entries = append(entries, e)
	}
	s.mu.RUnlock()
	for _, e := range entries {
		m := e.cur.Load()
		mr := ModelResilience{
			Version:  m.info.Version,
			Checksum: m.info.Checksum,
			LoadedAt: m.loadedAt,
			Reloads:  e.reloads.Load(), Rollbacks: e.rollbacks.Load(),
			Breaker: e.breaker.status(),
		}
		e.ctl.Lock()
		mr.Source = e.source
		if e.prev != nil {
			mr.PreviousVersion = e.prev.info.Version
		}
		e.ctl.Unlock()
		if f := e.lastReloadErr.Load(); f != nil {
			mr.LastReloadError = f
		}
		rs.Models[e.name] = mr
	}
	return rs
}

// spanKey renders a window span compactly ("10s", "1m", "5m").
func spanKey(d time.Duration) string {
	if d%time.Minute == 0 {
		return strconv.Itoa(int(d/time.Minute)) + "m"
	}
	return strconv.Itoa(int(d/time.Second)) + "s"
}

func windowJSON(st obs.WindowStats) WindowJSON {
	ms := func(s float64) float64 { return s * 1e3 }
	return WindowJSON{
		Count: st.Count, RatePerS: st.Rate,
		MeanMs: ms(st.Mean), P50Ms: ms(st.P50), P95Ms: ms(st.P95), P99Ms: ms(st.P99),
	}
}

// Snapshot assembles the full stats-plane view.
func (st *serverStats) Snapshot() StatsSnapshot {
	snap := StatsSnapshot{
		Now:       time.Now(),
		UptimeS:   time.Since(st.start).Seconds(),
		SLOTarget: st.sloTarget.String(),
		Endpoints: map[string]EndpointStats{},
		Models:    map[string]ModelQuality{},
	}

	st.mu.Lock()
	routes := make(map[string]*routeStats, len(st.routes))
	for k, v := range st.routes {
		routes[k] = v
	}
	models := make(map[string]*modelStats, len(st.models))
	for k, v := range st.models {
		models[k] = v
	}
	snap.Sessions = st.global
	st.mu.Unlock()

	for name, rs := range routes {
		es := EndpointStats{Windows: map[string]WindowJSON{}, SLO: map[string]obs.SLOReport{}}
		for _, span := range obs.StatsSpans {
			es.Windows[spanKey(span)] = windowJSON(rs.win.Snapshot(span))
			es.SLO[spanKey(span)] = rs.slo.Report(span)
		}
		snap.Endpoints[name] = es
	}
	for name, ms := range models {
		ms.mu.Lock()
		q := ModelQuality{
			Decisions:      ms.decisions,
			EarlyCommits:   ms.earlyCommits,
			PointBatches:   ms.pointBatches,
			PendingAnswers: ms.pendingAnswers,
			Sessions:       ms.sessions,
		}
		if ms.decisions > 0 {
			q.EarlinessAtCommit = ms.earlinessSum / float64(ms.decisions)
			q.EarlyCommitRate = float64(ms.earlyCommits) / float64(ms.decisions)
			q.QualityHM = harmonicQuality(q.EarlinessAtCommit, q.EarlyCommitRate)
		}
		if ms.pointBatches > 0 {
			q.PendingRate = float64(ms.pendingAnswers) / float64(ms.pointBatches)
		}
		for i, c := range ms.prefixHist {
			q.PrefixHist = append(q.PrefixHist, PrefixBucket{LE: float64(i+1) / prefixBuckets, Count: c})
		}
		ms.mu.Unlock()
		snap.Models[name] = q
	}
	return snap
}

// ---- handlers ----

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) error {
	return writeJSON(w, http.StatusOK, s.Stats())
}

// handleMetrics serves the registry in Prometheus text exposition
// format; with no registry configured the body is empty but valid.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) error {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	return s.cfg.Obs.Registry().WritePrometheus(w)
}

// sortedKeys returns map keys in deterministic order for rendering.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
