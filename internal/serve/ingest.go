package serve

import (
	"fmt"
	"sync"
	"time"

	"github.com/goetsc/goetsc/internal/core"
	"github.com/goetsc/goetsc/internal/ingest"
	"github.com/goetsc/goetsc/internal/persist"
	ts "github.com/goetsc/goetsc/internal/timeseries"
)

// The ingest bridge: *Server satisfies ingest.Registry, so the
// continuous-ingest pipeline resolves model versions from — and swaps
// retrained models into — the same versioned registry the HTTP control
// plane operates on. A pinned version behaves exactly like a streaming
// session's: windows in flight finish on it, a hot swap only reaches
// windows opened afterwards.

// Pin resolves the live version of a model for the ingest pipeline. The
// returned Begin builds cursors that carry the version's serialization
// needs with them: native cursors advance lock-free, fallback cursors
// (which replay Classify and may reuse model scratch) arrive wrapped in
// the version's mutex — the same discipline handleSessionPoints applies.
func (s *Server) Pin(name string) (ingest.Pinned, error) {
	e, ok := s.entry(name)
	if !ok {
		return ingest.Pinned{}, fmt.Errorf("serve: unknown model %q", name)
	}
	m := e.cur.Load()
	return ingest.Pinned{
		Name:       name,
		Version:    m.info.Version,
		Length:     m.info.Length,
		NumVars:    m.info.NumVars,
		NumClasses: m.info.NumClasses,
		Begin: func(in ts.Instance) core.Cursor {
			cur, native := core.NewCursor(m.algo, in)
			if native {
				return cur
			}
			return &lockedCursor{cur: cur, mu: &m.mu}
		},
	}, nil
}

// lockedCursor serializes a fallback cursor on its model's mutex, so
// many entities may hold cursors of one non-incremental model version
// and advance them from different shards safely.
type lockedCursor struct {
	cur core.Cursor
	mu  *sync.Mutex
}

func (lc *lockedCursor) Advance(upto int) (label, consumed int, done bool) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.cur.Advance(upto)
}

// SwapModel atomically replaces a model's live version with a freshly
// trained in-memory classifier — the retrainer's half of the hot-reload
// path. It mirrors handleModelReload minus the file I/O: version
// numbering continues, the previous version is retained for rollback,
// the breaker resets, and the swap is journaled. The entry's source
// path survives, so an operator reload can still restore the on-disk
// artifact afterwards.
func (s *Server) SwapModel(name string, algo core.EarlyClassifier, meta persist.Meta) (int, error) {
	if algo == nil {
		return 0, fmt.Errorf("serve: swap of %q needs a classifier", name)
	}
	e, ok := s.entry(name)
	if !ok {
		return 0, fmt.Errorf("serve: unknown model %q", name)
	}
	e.ctl.Lock()
	defer e.ctl.Unlock()
	old := e.cur.Load()
	next := s.newModel(name, algo, meta, old.info.Version+1, 0, e.stats)
	retired := e.prev
	e.prev = old
	e.cur.Store(next)
	e.reloads.Add(1)
	e.lastReloadErr.Store(nil)
	s.reloadOK.Inc()
	e.breaker.reset("swap")
	s.cfg.Obs.Emit("model_swapped", map[string]any{
		"model": name, "version": next.info.Version,
		"previous_version": old.info.Version, "algorithm": next.info.Algorithm,
		"dataset": meta.Dataset, "swapped_at": time.Now().Format(time.RFC3339Nano),
	})
	if retired != nil && retired.coalesce != nil {
		go retired.coalesce.stop()
	}
	return next.info.Version, nil
}
