package serve

import (
	"errors"
	"io/fs"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/goetsc/goetsc/internal/core"
	"github.com/goetsc/goetsc/internal/persist"
)

// The model registry gives every served model a version history: the
// live version sits behind an atomic pointer the request plane loads
// lock-free, and the control plane (reload/rollback) swaps it
// copy-on-write. In-flight requests and live streaming sessions hold the
// *model they resolved and keep it until they finish, so a hot swap
// never changes a decision mid-stream — a session's answers stay
// bit-identical to the version it started on. The previous version is
// retained for instant rollback; a reload that fails validation
// (truncated file, checksum mismatch, wrong algorithm tag, …) leaves the
// live pointer untouched, so a corrupt artifact can never replace a
// healthy model.

// modelEntry is one registered model name: its live version, the
// retained previous version, and the control-plane state shared across
// versions (quality stats, circuit breaker, reload provenance).
type modelEntry struct {
	name string
	cur  atomic.Pointer[model]

	// ctl serializes reload/rollback; the request plane never takes it.
	ctl     sync.Mutex
	prev    *model // retained for rollback; nil until the first reload
	source  string // file the model came from; reloads re-read it
	breaker *breaker
	stats   *modelStats

	reloads   atomic.Uint64
	rollbacks atomic.Uint64
	// lastReloadErr is the most recent failed reload (nil after a
	// successful reload/rollback); readyz reports it as degraded state.
	lastReloadErr atomic.Pointer[reloadFailure]
}

// reloadFailure records one rejected reload for readyz and /v1/stats.
type reloadFailure struct {
	Kind  string    `json:"kind"`
	Error string    `json:"error"`
	At    time.Time `json:"at"`
}

// entry returns the registry slot for a model name.
func (s *Server) entry(name string) (*modelEntry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.models[name]
	return e, ok
}

// lookup resolves the live version of a model. The returned *model is
// pinned by the caller for the duration of its request: a concurrent
// swap retires the version only for requests that arrive after it.
func (s *Server) lookup(name string) (*model, bool) {
	e, ok := s.entry(name)
	if !ok {
		return nil, false
	}
	return e.cur.Load(), true
}

// newModel assembles one immutable model version (classifier + response
// arena + optional coalescing batcher). Versions share the entry's
// stats so quality telemetry is continuous across reloads.
func (s *Server) newModel(name string, algo core.EarlyClassifier, meta persist.Meta,
	version int, checksum uint64, stats *modelStats) *model {
	if s.cfg.Float32 {
		core.EnableFloat32(algo, true)
	}
	m := &model{
		info: ModelInfo{
			Name: name, Algorithm: algo.Name(), Dataset: meta.Dataset,
			Length: meta.Length, NumVars: meta.NumVars, NumClasses: meta.NumClasses,
			Version: version, Checksum: checksumHex(checksum),
		},
		algo:     algo,
		checksum: checksum,
		loadedAt: time.Now(),
		stats:    stats,
	}
	// Arena sizing: the largest hot response is a session state line; 96
	// bytes covers every fixed token plus two ints, the rest is names/ids.
	m.arenaCap = 96 + len(name) + len(m.info.Algorithm)
	if s.cfg.CoalesceWindow > 0 {
		if bc, ok := algo.(core.BatchClassifier); ok {
			m.coalesce = newBatcher(m, bc, s.cfg.CoalesceWindow, s.cfg.CoalesceMax, s.sem)
		}
	}
	return m
}

// reloadRequest optionally points a reload at a new artifact; with no
// body (or no path) the model's original source file is re-read.
type reloadRequest struct {
	Path string `json:"path,omitempty"`
}

// reloadResponse answers a successful reload or rollback.
type reloadResponse struct {
	Model           string `json:"model"`
	Algorithm       string `json:"algorithm"`
	Version         int    `json:"version"`
	PreviousVersion int    `json:"previous_version,omitempty"`
	Checksum        string `json:"checksum"`
}

// reloadError maps each persist failure mode to a distinct HTTP status
// and machine-readable kind, so operators (and the chaos suite) can tell
// a wrong file from a damaged one from the status alone. The old model
// keeps serving in every case.
func reloadError(err error) *apiError {
	switch {
	case errors.Is(err, fs.ErrNotExist):
		return errk(http.StatusNotFound, "not_found", "reload: %v", err)
	case errors.Is(err, persist.ErrBadMagic):
		return errk(http.StatusUnsupportedMediaType, "bad_magic", "reload: %v", err)
	case errors.Is(err, persist.ErrVersion):
		return errk(http.StatusPreconditionFailed, "unsupported_version", "reload: %v", err)
	case errors.Is(err, persist.ErrTruncated):
		return errk(http.StatusUnprocessableEntity, "truncated", "reload: %v", err)
	case errors.Is(err, persist.ErrChecksum):
		return errk(http.StatusInternalServerError, "checksum", "reload: %v", err)
	case errors.Is(err, persist.ErrAlgorithmMismatch):
		return errk(http.StatusConflict, "algorithm_mismatch", "reload: %v", err)
	default:
		return errk(http.StatusBadRequest, "invalid", "reload: %v", err)
	}
}

// handleModelReload is POST /v1/models/{name}/reload: load and validate
// a fresh envelope, then atomically swap it in. The previous version is
// retained for rollback; on any validation failure the live version
// keeps serving and the failure is journaled and surfaced via readyz.
func (s *Server) handleModelReload(w http.ResponseWriter, r *http.Request) error {
	name := r.PathValue("name")
	e, ok := s.entry(name)
	if !ok {
		return errf(http.StatusNotFound, "unknown model %q", name)
	}
	var req reloadRequest
	if err := decodeOptionalJSON(r, &req); err != nil {
		return err
	}

	e.ctl.Lock()
	defer e.ctl.Unlock()
	path := e.source
	if req.Path != "" {
		path = req.Path
	}
	if path == "" {
		return errk(http.StatusConflict, "no_source",
			"model %q was registered in-memory; reload needs a \"path\"", name)
	}
	algo, meta, fi, err := persist.LoadFileInfo(path)
	if err != nil {
		ae := reloadError(err)
		e.lastReloadErr.Store(&reloadFailure{Kind: ae.kind, Error: ae.msg, At: time.Now()})
		s.reloadFailed.Inc()
		s.cfg.Obs.Emit("reload_failed", map[string]any{
			"model": name, "path": path, "kind": ae.kind, "error": ae.msg,
		})
		return ae
	}

	old := e.cur.Load()
	next := s.newModel(name, algo, meta, old.info.Version+1, fi.Checksum, e.stats)
	retired := e.prev // the version falling out of the two-deep history
	e.prev = old
	e.source = path
	e.cur.Store(next)
	e.reloads.Add(1)
	e.lastReloadErr.Store(nil)
	s.reloadOK.Inc()
	// A fresh model deserves a closed breaker; the swap is journaled
	// either way so the state history stays complete.
	e.breaker.reset("reload")
	s.cfg.Obs.Emit("model_reloaded", map[string]any{
		"model": name, "path": path, "version": next.info.Version,
		"previous_version": old.info.Version, "algorithm": next.info.Algorithm,
		"checksum": fi.Checksum, "bytes": fi.Bytes,
	})
	// The retired version can still be pinned by in-flight requests and
	// live sessions — those finish on it — but no new request can resolve
	// it, so its batcher (if any) stops once the queue drains.
	if retired != nil && retired.coalesce != nil {
		go retired.coalesce.stop()
	}
	return writeJSON(w, http.StatusOK, reloadResponse{
		Model: name, Algorithm: next.info.Algorithm, Version: next.info.Version,
		PreviousVersion: old.info.Version, Checksum: checksumHex(fi.Checksum),
	})
}

// handleModelRollback is POST /v1/models/{name}/rollback: swap the
// retained previous version back in. Rolling back twice swaps forward
// again — the two-deep history is a toggle, not a stack.
func (s *Server) handleModelRollback(w http.ResponseWriter, r *http.Request) error {
	name := r.PathValue("name")
	e, ok := s.entry(name)
	if !ok {
		return errf(http.StatusNotFound, "unknown model %q", name)
	}
	e.ctl.Lock()
	defer e.ctl.Unlock()
	if e.prev == nil {
		return errk(http.StatusConflict, "no_previous_version",
			"model %q has no previous version to roll back to", name)
	}
	old := e.cur.Load()
	next := e.prev
	e.prev = old
	e.cur.Store(next)
	e.rollbacks.Add(1)
	e.lastReloadErr.Store(nil)
	s.rollbacks.Inc()
	e.breaker.reset("rollback")
	s.cfg.Obs.Emit("model_rolled_back", map[string]any{
		"model": name, "version": next.info.Version, "from_version": old.info.Version,
	})
	return writeJSON(w, http.StatusOK, reloadResponse{
		Model: name, Algorithm: next.info.Algorithm, Version: next.info.Version,
		PreviousVersion: old.info.Version, Checksum: checksumHex(next.checksum),
	})
}

// checksumHex renders the envelope checksum the way /v1/models and
// /v1/stats report it; in-memory models (no envelope) render empty.
func checksumHex(sum uint64) string {
	if sum == 0 {
		return ""
	}
	const hex = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hex[sum&0xf]
		sum >>= 4
	}
	return string(b[:])
}

// decodeOptionalJSON parses a JSON body like decodeJSON but treats an
// empty body as the zero value — control-plane POSTs take no required
// fields.
func decodeOptionalJSON(r *http.Request, v any) error {
	err := decodeJSON(r, v)
	if err == nil {
		return nil
	}
	var ae *apiError
	if errors.As(err, &ae) && ae.status == http.StatusBadRequest {
		// decodeJSON wraps io.EOF as a malformed-body 400; an absent body
		// is fine here, anything else is still a client error.
		if ae.msg == "malformed request body: EOF" {
			return nil
		}
	}
	return err
}
