package serve

import (
	"fmt"
	"html/template"
	"net/http"

	"github.com/goetsc/goetsc/internal/obs"
)

// GET /debug/etsc — an auto-refreshing human view of the stats plane,
// rendered server-side from the same snapshot /v1/stats serves. It is a
// debugging surface, not a product: no scripts, one template, plain
// tables.

var dashboardTmpl = template.Must(template.New("etsc").Parse(`<!doctype html>
<html><head><meta charset="utf-8">
<meta http-equiv="refresh" content="2">
<title>etsc-serve stats</title>
<style>
body { font: 13px/1.5 monospace; margin: 1.5em; color: #222; }
h1 { font-size: 16px; } h2 { font-size: 14px; margin-top: 1.5em; }
table { border-collapse: collapse; margin: 0.5em 0; }
th, td { border: 1px solid #bbb; padding: 2px 8px; text-align: right; }
th { background: #eee; } td.name, th.name { text-align: left; }
.ok { color: #0a0; } .bad { color: #c00; font-weight: bold; }
</style></head><body>
<h1>etsc-serve · live stats</h1>
<p>uptime {{printf "%.0f" .Snap.UptimeS}}s · SLO {{.Snap.SLOTarget}} · refreshed {{.Snap.Now.Format "15:04:05"}} (auto-reloads every 2s; JSON at <a href="/v1/stats">/v1/stats</a>, Prometheus at <a href="/metrics">/metrics</a>)</p>

<h2>Endpoints — rolling windows</h2>
<table>
<tr><th class="name">route</th><th>window</th><th>count</th><th>rate/s</th><th>p50 ms</th><th>p95 ms</th><th>p99 ms</th><th>SLO</th><th>burn</th></tr>
{{range $route := .Routes}}{{$es := index $.Snap.Endpoints $route}}{{range $span := $.Spans}}{{$w := index $es.Windows $span}}{{$slo := index $es.SLO $span}}
<tr><td class="name">{{$route}}</td><td>{{$span}}</td><td>{{$w.Count}}</td><td>{{printf "%.1f" $w.RatePerS}}</td>
<td>{{printf "%.2f" $w.P50Ms}}</td><td>{{printf "%.2f" $w.P95Ms}}</td><td>{{printf "%.2f" $w.P99Ms}}</td>
<td>{{if $slo.Healthy}}<span class="ok">ok {{printf "%.3f" $slo.Compliance}}</span>{{else}}<span class="bad">BREACH {{printf "%.3f" $slo.Compliance}}</span>{{end}}</td>
<td>{{printf "%.2f" $slo.BudgetBurn}}</td></tr>
{{end}}{{end}}
</table>

<h2>Models — online quality (live counterparts of the paper's earliness metrics)</h2>
<table>
<tr><th class="name">model</th><th>decisions</th><th>earliness@commit</th><th>early-commit rate</th><th>quality HM</th><th>point batches</th><th>pending rate</th><th>sessions c/a/d/cl/e</th></tr>
{{range $name := .Models}}{{$m := index $.Snap.Models $name}}
<tr><td class="name">{{$name}}</td><td>{{$m.Decisions}}</td>
<td>{{printf "%.3f" $m.EarlinessAtCommit}}</td><td>{{printf "%.3f" $m.EarlyCommitRate}}</td><td>{{printf "%.3f" $m.QualityHM}}</td>
<td>{{$m.PointBatches}}</td><td>{{printf "%.3f" $m.PendingRate}}</td>
<td>{{$m.Sessions.Created}}/{{$m.Sessions.Advanced}}/{{$m.Sessions.Decided}}/{{$m.Sessions.Closed}}/{{$m.Sessions.Evicted}}</td></tr>
{{end}}
</table>

<h2>Decision-prefix histograms (consumed/length at commit)</h2>
<table>
<tr><th class="name">model</th>{{range $b := .PrefixLabels}}<th>&le;{{$b}}</th>{{end}}</tr>
{{range $name := .Models}}{{$m := index $.Snap.Models $name}}
<tr><td class="name">{{$name}}</td>{{range $pb := $m.PrefixHist}}<td>{{$pb.Count}}</td>{{end}}</tr>
{{end}}
</table>

<p>sessions total: created {{.Snap.Sessions.Created}}, advanced {{.Snap.Sessions.Advanced}}, decided {{.Snap.Sessions.Decided}}, closed {{.Snap.Sessions.Closed}}, evicted {{.Snap.Sessions.Evicted}}</p>
</body></html>
`))

func (s *Server) handleDashboard(w http.ResponseWriter, _ *http.Request) error {
	snap := s.stats.Snapshot()
	spans := make([]string, len(obs.StatsSpans))
	for i, d := range obs.StatsSpans {
		spans[i] = spanKey(d)
	}
	labels := make([]string, prefixBuckets)
	for i := range labels {
		labels[i] = fmt.Sprintf("%.1f", float64(i+1)/prefixBuckets)
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	return dashboardTmpl.Execute(w, map[string]any{
		"Snap":         snap,
		"Routes":       sortedKeys(snap.Endpoints),
		"Models":       sortedKeys(snap.Models),
		"Spans":        spans,
		"PrefixLabels": labels,
	})
}
