package serve

import (
	"sync"
	"testing"
	"time"

	"github.com/goetsc/goetsc/internal/ingest"
)

// sharedClock is one injectable time source driving both eviction
// planes in the shared-clock test.
type sharedClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *sharedClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *sharedClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// TestSharedClockEviction drives the serve layer's session TTL sweep
// and the ingest layer's entity TTL sweep from one injected fake clock:
// both planes share the evict.Policy helper, so one clock advance ages
// both deterministically — no sleeps, no wall time.
func TestSharedClockEviction(t *testing.T) {
	clk := &sharedClock{t: time.Unix(1_700_000_000, 0)}
	s, hs := newTestServer(t, Config{SessionTTL: time.Minute, Clock: clk.now})

	// One streaming session on the serve plane.
	resp := postJSON(t, hs.URL+"/v1/sessions", map[string]string{"model": "ects"})
	if resp.StatusCode != 201 {
		t.Fatalf("session create status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// One live entity on the ingest plane, against the same registry and
	// the same clock.
	p, err := ingest.New(ingest.Config{
		Registry: s, Model: "ects", Shards: 1,
		EntityTTL: time.Minute, Clock: clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Submit(ingest.Event{Entity: "vessel", T: 0, Values: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	p.Flush()

	// Before the TTL, neither plane evicts.
	clk.advance(30 * time.Second)
	if n := s.EvictIdleSessions(); n != 0 {
		t.Fatalf("session sweep evicted %d before TTL", n)
	}
	if n := p.EvictIdle(); n != 0 {
		t.Fatalf("entity sweep evicted %d before TTL", n)
	}

	// One advance past the TTL ages both planes together.
	clk.advance(31 * time.Second)
	if n := s.EvictIdleSessions(); n != 1 {
		t.Errorf("session sweep evicted %d, want 1", n)
	}
	if n := p.EvictIdle(); n != 1 {
		t.Errorf("entity sweep evicted %d, want 1", n)
	}
	if st := p.Stats(); st.EntitiesLive != 0 || st.EntitiesEvicted != 1 {
		t.Errorf("ingest live/evicted = %d/%d, want 0/1", st.EntitiesLive, st.EntitiesEvicted)
	}
}
