package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/goetsc/goetsc/internal/bench"
	"github.com/goetsc/goetsc/internal/core"
	"github.com/goetsc/goetsc/internal/faults"
	"github.com/goetsc/goetsc/internal/loadgen"
	"github.com/goetsc/goetsc/internal/obs"
	"github.com/goetsc/goetsc/internal/persist"
	ts "github.com/goetsc/goetsc/internal/timeseries"
)

// The serve-layer chaos suite (`make chaos-serve`, run under -race):
// hot reload under live traffic, corrupt-artifact rejection across the
// whole persist failure taxonomy, rollback, circuit-breaker schedules,
// tenant quotas, overload shedding and graceful drain. Fault placement
// is deterministic (explicit hooks, no randomness), so every run sees
// the same faults at the same requests at any -race schedule.

// chaosModels returns the shared v1 ECTS fixture plus a second ECTS
// trained on the same series with flipped labels — a deliberately
// different decision function behind the identical request shape, so a
// hot swap visibly changes answers while every validation still passes.
var chaosOnce sync.Once
var chaosV2 core.EarlyClassifier

func chaosModels(t *testing.T) (v1, v2 core.EarlyClassifier, d *ts.Dataset) {
	t.Helper()
	v1, d = fixture(t)
	chaosOnce.Do(func() {
		flipped := &ts.Dataset{Name: d.Name, Instances: make([]ts.Instance, d.Len()), Freq: d.Freq}
		for i, in := range d.Instances {
			flipped.Instances[i] = ts.Instance{Values: in.Values, Label: 1 - in.Label}
		}
		f := bench.AlgorithmsByName(d.Name, bench.Fast, 1, []string{"ECTS"})[0]
		chaosV2 = f.New()
		if err := chaosV2.Fit(flipped); err != nil {
			panic(err)
		}
	})
	return v1, chaosV2, fixtureData
}

// saveModel persists algo at path with the fixture dataset's meta.
func saveModel(t *testing.T, path string, algo core.EarlyClassifier, d *ts.Dataset) {
	t.Helper()
	meta := persist.Meta{Dataset: d.Name, Length: d.MaxLength(), NumVars: d.NumVars(), NumClasses: d.NumClasses()}
	if err := persist.SaveFile(path, algo, meta); err != nil {
		t.Fatalf("save model: %v", err)
	}
}

// newChaosServer builds a server whose "ects" model was loaded from a
// file (so reloads have a source), with the reload API on and a live
// journal + registry. The returned path is the model's source file.
func newChaosServer(t *testing.T, cfg Config) (*Server, *httptest.Server, string, *journalBuffer) {
	t.Helper()
	v1, _, d := chaosModels(t)
	path := filepath.Join(t.TempDir(), "ects.goetsc")
	saveModel(t, path, v1, d)
	jb := &journalBuffer{}
	if cfg.Obs == nil {
		cfg.Obs = obs.New(obs.Options{Journal: obs.NewJournal(jb), Metrics: obs.NewRegistry()})
	}
	cfg.ReloadAPI = true
	s := New(cfg)
	if name, err := s.LoadFile(path); err != nil || name != "ects" {
		t.Fatalf("load %s: name %q err %v", path, name, err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(s.Close)
	return s, hs, path, jb
}

// journalEvents returns the journal records of one type, in order.
func journalEvents(t *testing.T, jb *journalBuffer, typ string) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range bytes.Split([]byte(jb.String()), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("bad journal line %q: %v", line, err)
		}
		if rec["type"] == typ {
			out = append(out, rec)
		}
	}
	return out
}

// postRaw posts a JSON body and returns status, raw response bytes and
// headers — the byte-identity tests compare whole bodies.
func postRaw(t *testing.T, url string, body any) (int, []byte, http.Header) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, raw, resp.Header
}

// apiErrorBody decodes the uniform error JSON.
func apiErrorBody(t *testing.T, raw []byte) (msg, kind string) {
	t.Helper()
	var got struct {
		Error string `json:"error"`
		Kind  string `json:"kind"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("decode error body %q: %v", raw, err)
	}
	return got.Error, got.Kind
}

// classifyProbe classifies one instance and fails unless the server
// answers with wantLabel/wantConsumed.
func classifyProbe(t *testing.T, baseURL string, in ts.Instance, ref core.EarlyClassifier, who string) {
	t.Helper()
	refMu.Lock()
	wantLabel, wantConsumed := ref.Classify(in)
	refMu.Unlock()
	status, raw, _ := postRaw(t, baseURL+"/v1/classify", map[string]any{"model": "ects", "values": in.Values})
	if status != http.StatusOK {
		t.Fatalf("%s: classify = %d: %s", who, status, raw)
	}
	var got struct {
		Label    int `json:"label"`
		Consumed int `json:"consumed"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("%s: decode: %v", who, err)
	}
	if got.Label != wantLabel || got.Consumed != wantConsumed {
		t.Fatalf("%s: served (%d, %d) != offline (%d, %d)", who, got.Label, got.Consumed, wantLabel, wantConsumed)
	}
}

// divergingInstance finds a probe where v1 and v2 decide differently —
// the witness that a swap actually changed the serving model.
func divergingInstance(t *testing.T) ts.Instance {
	t.Helper()
	v1, v2, d := chaosModels(t)
	refMu.Lock()
	defer refMu.Unlock()
	for _, in := range d.Instances {
		l1, _ := v1.Classify(in)
		l2, _ := v2.Classify(in)
		if l1 != l2 {
			return in
		}
	}
	t.Fatal("no instance distinguishes the flipped-label model from the original")
	return ts.Instance{}
}

func TestReloadHotSwapServesNewVersion(t *testing.T) {
	v1, v2, d := chaosModels(t)
	s, hs, path, jb := newChaosServer(t, Config{})
	in := divergingInstance(t)

	classifyProbe(t, hs.URL, in, v1, "before reload")

	saveModel(t, path, v2, d)
	status, raw, _ := postRaw(t, hs.URL+"/v1/models/ects/reload", nil)
	if status != http.StatusOK {
		t.Fatalf("reload = %d: %s", status, raw)
	}
	var rr reloadResponse
	if err := json.Unmarshal(raw, &rr); err != nil {
		t.Fatalf("decode reload response: %v", err)
	}
	if rr.Version != 2 || rr.PreviousVersion != 1 || rr.Checksum == "" {
		t.Fatalf("reload response = %+v, want version 2 over 1 with a checksum", rr)
	}

	classifyProbe(t, hs.URL, in, v2, "after reload")

	models := s.Models()
	if len(models) != 1 || models[0].Version != 2 || models[0].Checksum == "" {
		t.Fatalf("models after reload = %+v, want version 2 with checksum", models)
	}
	rs := s.Stats().Resilience
	if rs == nil || rs.Models["ects"].Reloads != 1 || rs.Models["ects"].Version != 2 {
		t.Fatalf("resilience stats after reload = %+v", rs)
	}
	if n := len(journalEvents(t, jb, "model_reloaded")); n != 1 {
		t.Fatalf("model_reloaded events = %d, want 1", n)
	}
}

// streamChunks runs one chunked session over values, recording the
// decision content (status, length, label, consumed) of every /points
// answer; session and model ids are blanked so runs compare equal when
// and only when their decisions match. after, when non-nil, runs once
// the chunk with index afterChunk has been answered.
func streamChunks(t *testing.T, baseURL string, values [][]float64, chunk, afterChunk int, after func()) []sessionState {
	t.Helper()
	resp := postJSON(t, baseURL+"/v1/sessions", map[string]any{"model": "ects"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create session = %d", resp.StatusCode)
	}
	var st sessionState
	decodeBody(t, resp, &st)
	base := baseURL + "/v1/sessions/" + st.SessionID
	var out []sessionState
	n := len(values[0])
	idx := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		batch := make([][]float64, len(values))
		for v := range values {
			batch[v] = values[v][lo:hi]
		}
		resp := postJSON(t, base+"/points", map[string]any{"values": batch, "last": hi == n})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("points chunk %d = %d", idx, resp.StatusCode)
		}
		decodeBody(t, resp, &st)
		st.SessionID, st.Model = "", ""
		out = append(out, st)
		if after != nil && idx == afterChunk {
			after()
		}
		idx++
		if st.Status == "decided" {
			break
		}
	}
	return out
}

// TestReloadMidStreamKeepsSessionDecisions is the pinning contract: a
// session created on v1 must produce decisions bit-identical to an
// undisturbed v1 run even when the model is hot-swapped mid-stream,
// while sessions created after the swap see v2.
func TestReloadMidStreamKeepsSessionDecisions(t *testing.T) {
	v1, v2, d := chaosModels(t)
	in := divergingInstance(t)
	refMu.Lock()
	_, consumed := v1.Classify(in)
	refMu.Unlock()
	// Chunk so the decision lands well after the swap at chunk index 1.
	chunk := consumed / 4
	if chunk < 1 {
		chunk = 1
	}

	_, control, _, _ := newChaosServer(t, Config{})
	want := streamChunks(t, control.URL, in.Values, chunk, -1, nil)

	_, hs, path, _ := newChaosServer(t, Config{})
	got := streamChunks(t, hs.URL, in.Values, chunk, 1, func() {
		saveModel(t, path, v2, d)
		status, raw, _ := postRaw(t, hs.URL+"/v1/models/ects/reload", nil)
		if status != http.StatusOK {
			t.Fatalf("mid-stream reload = %d: %s", status, raw)
		}
	})
	if len(want) <= 2 {
		t.Fatalf("decision landed before the swap (%d chunks) — fixture too easy", len(want))
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("session decisions diverged after mid-stream reload:\n got %s\nwant %s", gotJSON, wantJSON)
	}

	// A session created after the swap streams against v2.
	refMu.Lock()
	wantLabel, _ := v2.Classify(in)
	refMu.Unlock()
	fresh := streamChunks(t, hs.URL, in.Values, chunk, -1, nil)
	last := fresh[len(fresh)-1]
	if last.Status != "decided" || last.Label == nil || *last.Label != wantLabel {
		t.Fatalf("post-swap session = %+v, want decided label %d (v2)", last, wantLabel)
	}
}

// TestReloadUnderConcurrentTraffic hammers classify while the control
// plane flips between versions; under -race this proves the pointer
// swap is safe, and every answer must match one of the two versions'
// offline decisions (each request pins whichever version it resolved).
func TestReloadUnderConcurrentTraffic(t *testing.T) {
	v1, v2, d := chaosModels(t)
	_, hs, path, _ := newChaosServer(t, Config{})
	in := divergingInstance(t)
	refMu.Lock()
	l1, c1 := v1.Classify(in)
	l2, c2 := v2.Classify(in)
	refMu.Unlock()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				status, raw, _ := postRaw(t, hs.URL+"/v1/classify", map[string]any{"model": "ects", "values": in.Values})
				if status != http.StatusOK {
					errs <- io.ErrUnexpectedEOF
					return
				}
				var got struct {
					Label    int `json:"label"`
					Consumed int `json:"consumed"`
				}
				if err := json.Unmarshal(raw, &got); err != nil {
					errs <- err
					return
				}
				if !(got.Label == l1 && got.Consumed == c1) && !(got.Label == l2 && got.Consumed == c2) {
					t.Errorf("answer (%d, %d) matches neither v1 (%d, %d) nor v2 (%d, %d)",
						got.Label, got.Consumed, l1, c1, l2, c2)
					errs <- io.ErrUnexpectedEOF
					return
				}
			}
		}()
	}
	saveModel(t, path, v2, d)
	for i := 0; i < 8; i++ {
		status, raw, _ := postRaw(t, hs.URL+"/v1/models/ects/reload", nil)
		if status != http.StatusOK {
			t.Fatalf("reload %d = %d: %s", i, status, raw)
		}
		status, raw, _ = postRaw(t, hs.URL+"/v1/models/ects/rollback", nil)
		if status != http.StatusOK {
			t.Fatalf("rollback %d = %d: %s", i, status, raw)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("traffic during reload churn failed: %v", err)
		}
	}
}

// mismatchEnvelope rewrites the envelope's algorithm tag in place (same
// length, different name) and fixes the checksum, so the file is
// structurally sound but its tag contradicts the stored model:
// persist.ErrAlgorithmMismatch, the one failure mode byte damage alone
// cannot reach.
func mismatchEnvelope(t *testing.T, env []byte) []byte {
	t.Helper()
	out := append([]byte(nil), env...)
	tagLen := binary.BigEndian.Uint32(out[12:])
	if tagLen == 0 || len(out) < 16+int(tagLen) {
		t.Fatalf("unexpected envelope layout (tag length %d)", tagLen)
	}
	out[16] ^= 0x01 // "ECTS" -> "DCTS"
	binary.BigEndian.PutUint64(out[len(out)-8:], persist.Checksum(out[:len(out)-8]))
	return out
}

// TestCorruptReloadTaxonomy drives every persist failure mode through
// the reload API: each maps to its own status + machine-readable kind
// and a reload_failed journal event, readyz turns degraded, and the old
// model keeps serving bit-identical answers throughout. A final good
// reload clears the degraded state.
func TestCorruptReloadTaxonomy(t *testing.T) {
	v1, _, d := chaosModels(t)
	s, hs, path, jb := newChaosServer(t, Config{})
	in := d.Instances[0]

	var env bytes.Buffer
	meta := persist.Meta{Dataset: d.Name, Length: d.MaxLength(), NumVars: d.NumVars(), NumClasses: d.NumClasses()}
	if err := persist.Save(&env, v1, meta); err != nil {
		t.Fatalf("build envelope: %v", err)
	}
	bad := filepath.Join(filepath.Dir(path), "bad.goetsc")

	cases := []struct {
		name       string
		data       []byte
		reloadPath string
		wantStatus int
		wantKind   string
	}{
		{"bad_magic", faults.Corrupt(env.Bytes(), faults.WrongMagic), bad, http.StatusUnsupportedMediaType, "bad_magic"},
		{"unsupported_version", faults.Corrupt(env.Bytes(), faults.FutureVersion), bad, http.StatusPreconditionFailed, "unsupported_version"},
		{"truncated", faults.Corrupt(env.Bytes(), faults.Truncate), bad, http.StatusUnprocessableEntity, "truncated"},
		{"checksum", faults.Corrupt(env.Bytes(), faults.FlipBit), bad, http.StatusInternalServerError, "checksum"},
		{"algorithm_mismatch", mismatchEnvelope(t, env.Bytes()), bad, http.StatusConflict, "algorithm_mismatch"},
		{"not_found", nil, filepath.Join(filepath.Dir(path), "missing.goetsc"), http.StatusNotFound, "not_found"},
	}
	for i, tc := range cases {
		if tc.data != nil {
			if err := os.WriteFile(bad, tc.data, 0o644); err != nil {
				t.Fatalf("%s: write: %v", tc.name, err)
			}
		}
		status, raw, _ := postRaw(t, hs.URL+"/v1/models/ects/reload", reloadRequest{Path: tc.reloadPath})
		msg, kind := apiErrorBody(t, raw)
		if status != tc.wantStatus || kind != tc.wantKind {
			t.Fatalf("%s: reload = %d kind %q (%s), want %d %q", tc.name, status, kind, msg, tc.wantStatus, tc.wantKind)
		}

		// The live model is untouched: same version, same answers.
		classifyProbe(t, hs.URL, in, v1, tc.name)
		if got := s.Models()[0].Version; got != 1 {
			t.Fatalf("%s: version = %d after rejected reload, want 1", tc.name, got)
		}

		// readyz reports the failure; healthz stays liveness-only.
		rstatus, rraw, _ := getRaw(t, hs.URL+"/readyz")
		var ready struct {
			Status        string                   `json:"status"`
			FailedReloads map[string]reloadFailure `json:"failed_reloads"`
		}
		if err := json.Unmarshal(rraw, &ready); err != nil {
			t.Fatalf("%s: decode readyz: %v", tc.name, err)
		}
		if rstatus != http.StatusServiceUnavailable || ready.Status != "degraded" ||
			ready.FailedReloads["ects"].Kind != tc.wantKind {
			t.Fatalf("%s: readyz = %d %s, want degraded with failed reload kind %q", tc.name, rstatus, rraw, tc.wantKind)
		}
		if hstatus, _, _ := getRaw(t, hs.URL+"/healthz"); hstatus != http.StatusOK {
			t.Fatalf("%s: healthz = %d during degraded state, want 200", tc.name, hstatus)
		}

		events := journalEvents(t, jb, "reload_failed")
		if len(events) != i+1 || events[i]["kind"] != tc.wantKind {
			t.Fatalf("%s: reload_failed events = %v, want %d with kind %q", tc.name, events, i+1, tc.wantKind)
		}
	}

	// A good reload clears the degraded state.
	status, raw, _ := postRaw(t, hs.URL+"/v1/models/ects/reload", nil)
	if status != http.StatusOK {
		t.Fatalf("healing reload = %d: %s", status, raw)
	}
	if rstatus, rraw, _ := getRaw(t, hs.URL+"/readyz"); rstatus != http.StatusOK {
		t.Fatalf("readyz after healing reload = %d: %s", rstatus, rraw)
	}
	rs := s.Stats().Resilience
	if rs.Models["ects"].LastReloadError != nil {
		t.Fatalf("last reload error survives a good reload: %+v", rs.Models["ects"].LastReloadError)
	}
}

// getRaw GETs a URL and returns status, raw body, headers.
func getRaw(t *testing.T, url string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, raw, resp.Header
}

// TestRollbackRestoresByteIdenticalResponses swaps v1→v2 and back,
// comparing whole response bodies: rollback must reproduce the exact
// bytes v1 served before the reload. The two-deep history is a toggle —
// a second rollback swaps forward to v2 again.
func TestRollbackRestoresByteIdenticalResponses(t *testing.T) {
	_, v2, d := chaosModels(t)
	s, hs, path, _ := newChaosServer(t, Config{})
	probes := d.Instances
	if len(probes) > 4 {
		probes = probes[:4]
	}

	classify := func(in ts.Instance) []byte {
		status, raw, _ := postRaw(t, hs.URL+"/v1/classify", map[string]any{"model": "ects", "values": in.Values})
		if status != http.StatusOK {
			t.Fatalf("classify = %d: %s", status, raw)
		}
		return raw
	}
	v1Bodies := make([][]byte, len(probes))
	for i, in := range probes {
		v1Bodies[i] = classify(in)
	}

	saveModel(t, path, v2, d)
	if status, raw, _ := postRaw(t, hs.URL+"/v1/models/ects/reload", nil); status != http.StatusOK {
		t.Fatalf("reload = %d: %s", status, raw)
	}
	diverged := false
	for i, in := range probes {
		if !bytes.Equal(classify(in), v1Bodies[i]) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("v2 answers identical to v1 on every probe — swap not observable")
	}

	status, raw, _ := postRaw(t, hs.URL+"/v1/models/ects/rollback", nil)
	if status != http.StatusOK {
		t.Fatalf("rollback = %d: %s", status, raw)
	}
	var rr reloadResponse
	if err := json.Unmarshal(raw, &rr); err != nil || rr.Version != 1 {
		t.Fatalf("rollback response = %s (err %v), want version 1", raw, err)
	}
	for i, in := range probes {
		if got := classify(in); !bytes.Equal(got, v1Bodies[i]) {
			t.Fatalf("probe %d after rollback: %s != v1's %s", i, got, v1Bodies[i])
		}
	}
	if rs := s.Stats().Resilience; rs.Models["ects"].Rollbacks != 1 {
		t.Fatalf("rollback counter = %d, want 1", rs.Models["ects"].Rollbacks)
	}

	// Toggle forward again.
	if status, raw, _ := postRaw(t, hs.URL+"/v1/models/ects/rollback", nil); status != http.StatusOK {
		t.Fatalf("second rollback = %d: %s", status, raw)
	} else {
		var rr reloadResponse
		if err := json.Unmarshal(raw, &rr); err != nil || rr.Version != 2 {
			t.Fatalf("second rollback = %s, want version 2", raw)
		}
	}
}

func TestRollbackWithoutHistory(t *testing.T) {
	_, hs, _, _ := newChaosServer(t, Config{})
	status, raw, _ := postRaw(t, hs.URL+"/v1/models/ects/rollback", nil)
	_, kind := apiErrorBody(t, raw)
	if status != http.StatusConflict || kind != "no_previous_version" {
		t.Fatalf("rollback with no history = %d %q, want 409 no_previous_version", status, kind)
	}
}

func TestReloadAPIDisabledByDefault(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	for _, route := range []string{"reload", "rollback"} {
		status, _, _ := postRaw(t, hs.URL+"/v1/models/ects/"+route, nil)
		if status != http.StatusNotFound {
			t.Fatalf("%s without -reload-api = %d, want 404", route, status)
		}
	}
}

func TestReloadInMemoryModelNeedsPath(t *testing.T) {
	_, hs := newTestServer(t, Config{ReloadAPI: true})
	status, raw, _ := postRaw(t, hs.URL+"/v1/models/ects/reload", nil)
	_, kind := apiErrorBody(t, raw)
	if status != http.StatusConflict || kind != "no_source" {
		t.Fatalf("reload of in-memory model = %d %q, want 409 no_source", status, kind)
	}
}

// TestBreakerOpensAndRecovers drives the full schedule: enough classify
// failures open the breaker (fast 503s with Retry-After, readyz
// degraded), the cooldown admits half-open probes, and a run of probe
// successes re-closes it — every transition journaled.
func TestBreakerOpensAndRecovers(t *testing.T) {
	var failing atomic.Bool
	cfg := Config{
		BreakerThreshold:  0.5,
		BreakerMinSamples: 4,
		BreakerCooldown:   60 * time.Millisecond,
		BreakerProbes:     2,
		ClassifyHook: func(string) error {
			if failing.Load() {
				return io.ErrUnexpectedEOF
			}
			return nil
		},
	}
	_, _, d := chaosModels(t)
	s, hs, _, jb := newChaosServer(t, cfg)
	in := d.Instances[0]
	body := map[string]any{"model": "ects", "values": in.Values}

	failing.Store(true)
	for i := 0; i < 4; i++ {
		status, raw, _ := postRaw(t, hs.URL+"/v1/classify", body)
		_, kind := apiErrorBody(t, raw)
		if status != http.StatusInternalServerError || kind != "classify_fault" {
			t.Fatalf("failing classify %d = %d %q, want 500 classify_fault", i, status, kind)
		}
	}

	// The breaker is open: requests fail fast with Retry-After, without
	// touching the classifier.
	status, raw, hdr := postRaw(t, hs.URL+"/v1/classify", body)
	_, kind := apiErrorBody(t, raw)
	if status != http.StatusServiceUnavailable || kind != "breaker_open" || hdr.Get("Retry-After") == "" {
		t.Fatalf("open breaker = %d %q Retry-After %q, want 503 breaker_open with Retry-After",
			status, kind, hdr.Get("Retry-After"))
	}
	rstatus, rraw, _ := getRaw(t, hs.URL+"/readyz")
	var ready struct {
		Status       string   `json:"status"`
		OpenBreakers []string `json:"open_breakers"`
	}
	if err := json.Unmarshal(rraw, &ready); err != nil {
		t.Fatalf("decode readyz: %v", err)
	}
	if rstatus != http.StatusServiceUnavailable || len(ready.OpenBreakers) != 1 || ready.OpenBreakers[0] != "ects" {
		t.Fatalf("readyz with open breaker = %d %s, want 503 listing ects", rstatus, rraw)
	}
	if hstatus, _, _ := getRaw(t, hs.URL+"/healthz"); hstatus != http.StatusOK {
		t.Fatalf("healthz = %d with open breaker, want 200 (liveness only)", hstatus)
	}
	if st := s.Stats().Resilience.Models["ects"].Breaker; st.State != "open" {
		t.Fatalf("stats breaker state = %q, want open", st.State)
	}

	// Sessions against the broken model fail fast too.
	sstatus, sraw, _ := postRaw(t, hs.URL+"/v1/sessions", map[string]any{"model": "ects"})
	if sstatus != http.StatusCreated {
		t.Fatalf("session create with open breaker = %d: %s", sstatus, sraw)
	}
	var st sessionState
	if err := json.Unmarshal(sraw, &st); err != nil {
		t.Fatalf("decode session: %v", err)
	}
	batch := [][]float64{in.Values[0][:1]}
	pstatus, praw, _ := postRaw(t, hs.URL+"/v1/sessions/"+st.SessionID+"/points",
		map[string]any{"values": batch})
	_, pkind := apiErrorBody(t, praw)
	if pstatus != http.StatusServiceUnavailable || pkind != "breaker_open" {
		t.Fatalf("session points with open breaker = %d %q, want 503 breaker_open", pstatus, pkind)
	}

	// After the cooldown, two healthy probes re-close the breaker.
	failing.Store(false)
	time.Sleep(80 * time.Millisecond)
	for i := 0; i < 2; i++ {
		status, raw, _ := postRaw(t, hs.URL+"/v1/classify", body)
		if status != http.StatusOK {
			t.Fatalf("half-open probe %d = %d: %s", i, status, raw)
		}
	}
	if st := s.Stats().Resilience.Models["ects"].Breaker; st.State != "closed" {
		t.Fatalf("breaker after probes = %q, want closed", st.State)
	}
	if rstatus, _, _ := getRaw(t, hs.URL+"/readyz"); rstatus != http.StatusOK {
		t.Fatalf("readyz after recovery = %d, want 200", rstatus)
	}

	var edges []string
	for _, ev := range journalEvents(t, jb, "breaker_state") {
		edges = append(edges, ev["from"].(string)+">"+ev["to"].(string))
	}
	want := []string{"closed>open", "open>half_open", "half_open>closed"}
	if len(edges) != len(want) {
		t.Fatalf("breaker transitions = %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("breaker transitions = %v, want %v", edges, want)
		}
	}
}

// TestBreakerPanicContained proves a panicking classifier fails its own
// request with a 500 — counted by the breaker — while the process and
// the other models keep serving.
func TestBreakerPanicContained(t *testing.T) {
	var panicking atomic.Bool
	cfg := Config{
		ClassifyHook: func(string) error {
			if panicking.Load() {
				panic("chaos: injected classify panic")
			}
			return nil
		},
	}
	v1, _, d := chaosModels(t)
	_, hs, _, _ := newChaosServer(t, cfg)
	in := d.Instances[0]
	body := map[string]any{"model": "ects", "values": in.Values}

	panicking.Store(true)
	status, raw, _ := postRaw(t, hs.URL+"/v1/classify", body)
	_, kind := apiErrorBody(t, raw)
	if status != http.StatusInternalServerError || kind != "classify_panic" {
		t.Fatalf("panicking classify = %d %q, want 500 classify_panic", status, kind)
	}
	panicking.Store(false)
	classifyProbe(t, hs.URL, in, v1, "after contained panic")
}

// TestTenantQuotaSheds enforces per-tenant token buckets: a tenant
// burning through its burst gets 429 + Retry-After while other tenants
// and the meta routes are untouched.
func TestTenantQuotaSheds(t *testing.T) {
	s, hs, _, _ := newChaosServer(t, Config{TenantRPS: 1, TenantBurst: 2})

	get := func(tenant, path string) (int, http.Header, string) {
		req, _ := http.NewRequest(http.MethodGet, hs.URL+path, nil)
		if tenant != "" {
			req.Header.Set("X-Etsc-Tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var body struct {
			Kind string `json:"kind"`
		}
		json.Unmarshal(raw, &body)
		return resp.StatusCode, resp.Header, body.Kind
	}

	// Two requests ride the burst; the third is over quota.
	for i := 0; i < 2; i++ {
		if status, _, _ := get("alice", "/v1/models"); status != http.StatusOK {
			t.Fatalf("alice request %d = %d, want 200", i, status)
		}
	}
	status, hdr, kind := get("alice", "/v1/models")
	if status != http.StatusTooManyRequests || kind != "quota" || hdr.Get("Retry-After") == "" {
		t.Fatalf("alice over quota = %d %q Retry-After %q, want 429 quota with Retry-After",
			status, kind, hdr.Get("Retry-After"))
	}

	// A different tenant (via query) has its own bucket.
	if status, _, _ := get("", "/v1/models?tenant=bob"); status != http.StatusOK {
		t.Fatalf("bob = %d, want 200", status)
	}

	// Meta routes are never shed, not even for the throttled tenant.
	for _, path := range []string{"/healthz", "/readyz", "/v1/stats", "/metrics"} {
		if status, _, _ := get("alice", path); status != http.StatusOK {
			t.Fatalf("meta route %s for throttled tenant = %d, want 200", path, status)
		}
	}

	if shed := s.Stats().Resilience.Shed["quota"]; shed < 1 {
		t.Fatalf("quota shed counter = %d, want >= 1", shed)
	}
}

// TestOverloadShedsAndKeepsAdmittedP99Flat is the saturation contract:
// a deliberately tiny server (2 workers, 40ms injected classify work,
// 10ms queue deadline) is slammed by 24 unpaced clients — >10x its
// capacity. The server must shed with 503s rather than queue without
// bound, every admitted answer must still match the offline classifier,
// and the admitted p99 must stay within 2x of the unloaded p99 (by
// construction the queue deadline caps the added wait at 10ms; the
// injected work is deliberately large so that fixed cost, not race
// -detector scheduling overhead, dominates both runs).
func TestOverloadShedsAndKeepsAdmittedP99Flat(t *testing.T) {
	v1, _, d := chaosModels(t)
	cfg := Config{
		Workers:      2,
		QueueDepth:   4,
		QueueTimeout: 10 * time.Millisecond,
		ClassifyHook: func(string) error { time.Sleep(40 * time.Millisecond); return nil },
	}
	s, hs, _, _ := newChaosServer(t, cfg)

	instances := make([][][]float64, 0, d.Len())
	refs := make([]loadgen.Reference, 0, d.Len())
	refMu.Lock()
	for _, in := range d.Instances {
		label, consumed := v1.Classify(in)
		if consumed > in.Length() {
			consumed = in.Length()
		}
		instances = append(instances, in.Values)
		refs = append(refs, loadgen.Reference{Label: label, Consumed: consumed})
	}
	refMu.Unlock()

	run := func(clients, total int) loadgen.Result {
		res, err := loadgen.Run(loadgen.Config{
			BaseURL: hs.URL, Model: "ects",
			Instances: instances, References: refs,
			Clients: clients, Total: total, Mode: loadgen.ModeClassify,
		})
		if err != nil {
			t.Fatalf("loadgen: %v", err)
		}
		if res.Errors > 0 {
			t.Fatalf("loadgen saw %d non-shed errors", res.Errors)
		}
		if res.ParityMismatches > 0 {
			t.Fatalf("%d admitted answers mismatched the offline classifier", res.ParityMismatches)
		}
		return res
	}

	base := run(1, 20)
	if base.Shed != 0 {
		t.Fatalf("unloaded run shed %d requests", base.Shed)
	}
	over := run(24, 240)
	if over.Shed == 0 {
		t.Fatal("overload run shed nothing at >10x saturation")
	}
	if admitted := over.Sent - over.Shed - over.Errors; admitted < 1 {
		t.Fatalf("overload run admitted nothing (sent %d, shed %d)", over.Sent, over.Shed)
	}
	if over.P99 > 2*base.P99 {
		t.Fatalf("admitted p99 %v > 2x unloaded p99 %v under overload", over.P99, base.P99)
	}
	if shed := s.Stats().Resilience.Shed["overload"]; shed == 0 {
		t.Fatal("server-side overload shed counter is zero")
	}
}

// TestDrainStopsAdmissionAndFlushesInflight is the SIGTERM path: with a
// chunked session request mid-classify, Drain must flip new work to 503
// + Connection: close while that request finishes, keep the meta routes
// answering, and journal drain_started/drain_complete.
func TestDrainStopsAdmissionAndFlushesInflight(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var gate sync.Once
	cfg := Config{
		ClassifyHook: func(string) error {
			gate.Do(func() {
				close(entered)
				<-release
			})
			return nil
		},
	}
	_, _, d := chaosModels(t)
	s, hs, _, jb := newChaosServer(t, cfg)
	in := d.Instances[0]

	// Open a session and block its first chunk inside the classify path.
	sstatus, sraw, _ := postRaw(t, hs.URL+"/v1/sessions", map[string]any{"model": "ects"})
	if sstatus != http.StatusCreated {
		t.Fatalf("create session = %d", sstatus)
	}
	var st sessionState
	if err := json.Unmarshal(sraw, &st); err != nil {
		t.Fatalf("decode session: %v", err)
	}
	base := hs.URL + "/v1/sessions/" + st.SessionID
	half := in.Length() / 2
	chunkBody := func(lo, hi int, last bool) map[string]any {
		batch := make([][]float64, len(in.Values))
		for v := range in.Values {
			batch[v] = in.Values[v][lo:hi]
		}
		return map[string]any{"values": batch, "last": last}
	}
	inflight := make(chan int, 1)
	go func() {
		status, _, _ := postRaw(t, base+"/points", chunkBody(0, half, false))
		inflight <- status
	}()
	<-entered

	// Drain with the chunk still in flight.
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	for i := 0; !s.Draining(); i++ {
		if i > 1000 {
			t.Fatal("server never entered drain mode")
		}
		time.Sleep(time.Millisecond)
	}

	// New work is refused with 503 + Connection: close; probes still
	// work. The Go client surfaces the close header as resp.Close.
	b, _ := json.Marshal(chunkBody(half, in.Length(), true))
	resp, err := http.Post(base+"/points", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("points during drain: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	_, kind := apiErrorBody(t, raw)
	if resp.StatusCode != http.StatusServiceUnavailable || kind != "draining" || !resp.Close {
		t.Fatalf("points during drain = %d %q close=%v, want 503 draining with Connection: close",
			resp.StatusCode, kind, resp.Close)
	}
	if hstatus, _, _ := getRaw(t, hs.URL+"/healthz"); hstatus != http.StatusOK {
		t.Fatalf("healthz during drain = %d, want 200", hstatus)
	}
	if rstatus, _, _ := getRaw(t, hs.URL+"/readyz"); rstatus != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain = %d, want 503", rstatus)
	}

	// Release the blocked chunk: it was admitted before the drain and
	// must complete; Drain returns clean once it does.
	close(release)
	if got := <-inflight; got != http.StatusOK {
		t.Fatalf("in-flight chunk finished with %d, want 200", got)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain = %v, want clean", err)
	}

	started := journalEvents(t, jb, "drain_started")
	completed := journalEvents(t, jb, "drain_complete")
	if len(started) != 1 || len(completed) != 1 {
		t.Fatalf("drain events = %d started, %d complete, want 1 each", len(started), len(completed))
	}
	if clean, _ := completed[0]["clean"].(bool); !clean {
		t.Fatalf("drain_complete = %v, want clean", completed[0])
	}
	if live, _ := completed[0]["live_sessions"].(float64); live != 1 {
		t.Fatalf("drain_complete live_sessions = %v, want 1", completed[0]["live_sessions"])
	}
	if shed := s.Stats().Resilience.Shed["draining"]; shed < 1 {
		t.Fatalf("draining shed counter = %d, want >= 1", shed)
	}
}
