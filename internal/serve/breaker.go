package serve

import (
	"sync"
	"time"

	"github.com/goetsc/goetsc/internal/obs"
)

// Per-model circuit breakers. A model whose classify path keeps failing
// (injected chaos faults, panics inside a damaged model, requests blown
// past their deadline) takes its whole worker slot budget down with it:
// every doomed request still queues, runs and fails. The breaker fails
// those requests fast instead — closed → open when the failure rate over
// a rolling window crosses the threshold, open → half-open after a
// cooldown, half-open → closed after a run of successful probes (or
// straight back to open on the first failed one). Every transition is
// journaled and mirrored into a Prometheus gauge, and open breakers turn
// readyz degraded.

// Breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

var breakerStateNames = [...]string{"closed", "open", "half_open"}

// breakerConfig tunes one breaker; the zero value is filled from the
// server Config defaults.
type breakerConfig struct {
	// Threshold is the failure rate in the window that opens the breaker.
	Threshold float64
	// MinSamples is the minimum window population before the rate counts.
	MinSamples int
	// Window bounds the failure-rate observation span; counts reset when
	// it elapses.
	Window time.Duration
	// Cooldown is how long an open breaker rejects before probing.
	Cooldown time.Duration
	// Probes is the run of half-open successes that closes the breaker.
	Probes int
}

// breaker is one model's circuit state machine. All methods are safe for
// concurrent use; now is injectable so the chaos suite can prove the
// open/half-open/closed schedule deterministically.
type breaker struct {
	cfg   breakerConfig
	model string
	now   func() time.Time
	emit  func(typ string, fields map[string]any)

	stateGauge  *obs.Gauge
	transitions *obs.Counter

	mu          sync.Mutex
	state       int
	fails       uint64 // failures in the current window
	total       uint64 // samples in the current window
	windowStart time.Time
	openedAt    time.Time
	probeOKs    int
}

func newBreaker(model string, cfg breakerConfig, reg *obs.Registry,
	emit func(string, map[string]any)) *breaker {
	lbl := obs.Label{Key: "model", Value: model}
	b := &breaker{
		cfg: cfg, model: model, now: time.Now, emit: emit,
		stateGauge: reg.Gauge("etsc_serve_breaker_state",
			"Circuit breaker state per model: 0 closed, 1 open, 2 half-open.", lbl),
		transitions: reg.Counter("etsc_serve_breaker_transitions_total",
			"Circuit breaker state transitions per model.", lbl),
	}
	b.windowStart = b.now()
	return b
}

// disabled reports whether the breaker is configured off (threshold out
// of (0,1]); a disabled breaker admits everything and records nothing.
func (b *breaker) disabled() bool {
	return b == nil || b.cfg.Threshold <= 0 || b.cfg.Threshold > 1
}

// allow decides whether a classify request may proceed. When the
// breaker is open it returns false with the remaining cooldown, which
// the handler surfaces as 503 + Retry-After.
func (b *breaker) allow() (bool, time.Duration) {
	if b.disabled() {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		wait := b.openedAt.Add(b.cfg.Cooldown).Sub(b.now())
		if wait > 0 {
			return false, wait
		}
		b.transition(breakerHalfOpen, "cooldown_elapsed")
		return true, 0
	default:
		return true, 0
	}
}

// record folds one classify outcome into the window and drives the
// state machine.
func (b *breaker) record(ok bool) {
	if b.disabled() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	switch b.state {
	case breakerClosed:
		if now.Sub(b.windowStart) >= b.cfg.Window {
			b.fails, b.total, b.windowStart = 0, 0, now
		}
		b.total++
		if !ok {
			b.fails++
		}
		if b.total >= uint64(b.cfg.MinSamples) &&
			float64(b.fails)/float64(b.total) >= b.cfg.Threshold {
			b.openedAt = now
			b.transition(breakerOpen, "failure_rate")
		}
	case breakerHalfOpen:
		if !ok {
			b.openedAt = now
			b.transition(breakerOpen, "probe_failed")
			return
		}
		b.probeOKs++
		if b.probeOKs >= b.cfg.Probes {
			b.fails, b.total, b.windowStart = 0, 0, now
			b.transition(breakerClosed, "probes_succeeded")
		}
	case breakerOpen:
		// A request admitted before the breaker opened finishing late;
		// its outcome is stale, the cooldown clock decides what happens.
	}
}

// reset forces the breaker closed — a freshly reloaded or rolled-back
// model starts with a clean slate.
func (b *breaker) reset(cause string) {
	if b.disabled() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails, b.total, b.probeOKs = 0, 0, 0
	b.windowStart = b.now()
	if b.state != breakerClosed {
		b.transition(breakerClosed, cause)
	}
}

// transition moves the state machine, journals the edge and mirrors the
// new state into the gauge. Callers hold b.mu.
func (b *breaker) transition(to int, cause string) {
	from := b.state
	b.state = to
	if to == breakerHalfOpen {
		b.probeOKs = 0
	}
	b.stateGauge.Set(float64(to))
	b.transitions.Inc()
	b.emit("breaker_state", map[string]any{
		"model": b.model, "from": breakerStateNames[from], "to": breakerStateNames[to],
		"cause": cause, "window_fails": b.fails, "window_total": b.total,
	})
}

// BreakerStatus is one breaker's /v1/stats view.
type BreakerStatus struct {
	State       string  `json:"state"`
	WindowFails uint64  `json:"window_fails"`
	WindowTotal uint64  `json:"window_total"`
	CooldownMs  float64 `json:"cooldown_remaining_ms,omitempty"`
}

// status snapshots the breaker for /v1/stats and readyz.
func (b *breaker) status() BreakerStatus {
	if b.disabled() {
		return BreakerStatus{State: "disabled"}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BreakerStatus{
		State: breakerStateNames[b.state], WindowFails: b.fails, WindowTotal: b.total,
	}
	if b.state == breakerOpen {
		if wait := b.openedAt.Add(b.cfg.Cooldown).Sub(b.now()); wait > 0 {
			st.CooldownMs = float64(wait) / float64(time.Millisecond)
		}
	}
	return st
}

// open reports whether the breaker currently rejects requests.
func (b *breaker) isOpen() bool {
	if b.disabled() {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == breakerOpen
}
