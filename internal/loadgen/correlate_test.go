package loadgen

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/goetsc/goetsc/internal/bench"
	"github.com/goetsc/goetsc/internal/obs"
	"github.com/goetsc/goetsc/internal/persist"
	"github.com/goetsc/goetsc/internal/serve"
	"github.com/goetsc/goetsc/internal/synth"
)

// startTracedServer is startServer with a live journal, so the access
// records are available for correlation.
func startTracedServer(t *testing.T) (baseURL string, instances [][][]float64, journal *bytes.Buffer) {
	t.Helper()
	d := synth.Dataset("loadgen-trace", 1, 2, 24, 40, 17)
	f := bench.AlgorithmsByName(d.Name, bench.Fast, 1, []string{"ECTS"})[0]
	algo := f.New()
	if err := algo.Fit(d); err != nil {
		t.Fatalf("fit: %v", err)
	}
	journal = &bytes.Buffer{} // Journal serializes writes; read only after the run
	srv := serve.New(serve.Config{Obs: obs.New(obs.Options{Journal: obs.NewJournal(journal)})})
	meta := persist.Meta{Dataset: d.Name, Length: d.MaxLength(), NumVars: d.NumVars(), NumClasses: d.NumClasses()}
	if err := srv.AddModel("ects", algo, meta); err != nil {
		t.Fatalf("add model: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	for _, in := range d.Instances {
		instances = append(instances, in.Values)
	}
	return hs.URL, instances, journal
}

// TestCorrelateClassifyRun: every classify trace the client sent must
// appear in the journal exactly once.
func TestCorrelateClassifyRun(t *testing.T) {
	baseURL, instances, journal := startTracedServer(t)
	res, err := Run(Config{
		BaseURL: baseURL, Model: "ects", Instances: instances,
		Clients: 4, Total: len(instances), CollectTraces: true,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.Traces) != len(instances) {
		t.Fatalf("trace records = %d, want %d", len(res.Traces), len(instances))
	}
	c, err := Correlate(res, strings.NewReader(journal.String()))
	if err != nil {
		t.Fatalf("correlate: %v", err)
	}
	if c.Matched != len(instances) || c.Unmatched != 0 {
		t.Fatalf("correlation %+v: want %d matched, 0 unmatched", c, len(instances))
	}
	if c.ServerRecords != len(instances) {
		t.Fatalf("server records = %d, want one per classify", c.ServerRecords)
	}
	if c.ClientP50 < c.ServerP50 {
		t.Fatalf("client wall p50 %s below server wall p50 %s", c.ClientP50, c.ServerP50)
	}
}

// TestCorrelateSessionRun: a session conversation shares one trace ID
// across create, every /points batch, and the delete.
func TestCorrelateSessionRun(t *testing.T) {
	baseURL, instances, journal := startTracedServer(t)
	res, err := Run(Config{
		BaseURL: baseURL, Model: "ects", Instances: instances,
		Total: len(instances), Mode: ModeSession, ChunkSize: 6, CollectTraces: true,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	wantRecords := 0
	for _, tr := range res.Traces {
		if tr.Requests < 3 { // create + at least one batch + delete
			t.Fatalf("trace %s used %d requests, want >= 3", tr.Trace, tr.Requests)
		}
		wantRecords += tr.Requests
	}
	c, err := Correlate(res, strings.NewReader(journal.String()))
	if err != nil {
		t.Fatalf("correlate: %v", err)
	}
	if c.Matched != len(instances) || c.Unmatched != 0 {
		t.Fatalf("correlation %+v: want %d matched, 0 unmatched", c, len(instances))
	}
	if c.ServerRecords != wantRecords {
		t.Fatalf("server records = %d, want %d (sum of per-trace requests)", c.ServerRecords, wantRecords)
	}
}

// TestCorrelateFixture pins the join math on hand-built records.
func TestCorrelateFixture(t *testing.T) {
	res := Result{Traces: []TraceRecord{
		{Trace: "aaaa", Latency: 10 * time.Millisecond},
		{Trace: "bbbb", Latency: 4 * time.Millisecond},
		{Trace: "cccc", Latency: 7 * time.Millisecond}, // not in journal
	}}
	journal := strings.Join([]string{
		`{"type":"access","trace":"aaaa","wall_ms":2}`,
		`{"type":"session_created","session":"x"}`, // other shapes are skipped
		`{"type":"access","trace":"aaaa","wall_ms":3}`,
		`{"type":"access","trace":"bbbb","wall_ms":1}`,
		`{"type":"access","trace":"dddd","wall_ms":9}`, // server-only trace ignored
		"not json at all",
	}, "\n")
	c, err := Correlate(res, strings.NewReader(journal))
	if err != nil {
		t.Fatalf("correlate: %v", err)
	}
	if c.ClientTraces != 3 || c.Matched != 2 || c.Unmatched != 1 || c.ServerRecords != 3 {
		t.Fatalf("counts wrong: %+v", c)
	}
	// Matched traces: aaaa client 10ms / server 5ms, bbbb client 4ms /
	// server 1ms. Nearest-rank over two samples: p50 is the smaller,
	// p99 the larger.
	if c.ClientP50 != 4*time.Millisecond || c.ClientP99 != 10*time.Millisecond {
		t.Fatalf("client quantiles: %+v", c)
	}
	if c.ServerP50 != 1*time.Millisecond || c.ServerP99 != 5*time.Millisecond {
		t.Fatalf("server quantiles: %+v", c)
	}
	if c.OverheadP50 != 3*time.Millisecond || c.OverheadP99 != 5*time.Millisecond || c.OverheadMean != 4*time.Millisecond {
		t.Fatalf("overhead quantiles: %+v", c)
	}
	if !strings.Contains(c.String(), "2/3 client traces matched") {
		t.Fatalf("report: %q", c.String())
	}
}

func TestCorrelateRequiresTraces(t *testing.T) {
	if _, err := Correlate(Result{}, strings.NewReader("")); err == nil {
		t.Fatal("correlating a run without trace records should fail")
	}
}
