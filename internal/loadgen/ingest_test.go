package loadgen

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/goetsc/goetsc/internal/bench"
	"github.com/goetsc/goetsc/internal/ingest"
	"github.com/goetsc/goetsc/internal/persist"
	"github.com/goetsc/goetsc/internal/serve"
	"github.com/goetsc/goetsc/internal/synth"
	ts "github.com/goetsc/goetsc/internal/timeseries"
)

// startIngestServer mounts the ingest endpoint next to the serve
// handler the way etsc-serve does — on the root mux, outside any
// buffering middleware.
func startIngestServer(t *testing.T) (baseURL string, d *ts.Dataset) {
	t.Helper()
	d = synth.Dataset("loadgen-ingest", 1, 2, 16, 30, 19)
	f := bench.AlgorithmsByName(d.Name, bench.Fast, 1, []string{"ECTS"})[0]
	algo := f.New()
	if err := algo.Fit(d); err != nil {
		t.Fatalf("fit: %v", err)
	}
	srv := serve.New(serve.Config{})
	t.Cleanup(srv.Close)
	meta := persist.Meta{Dataset: d.Name, Length: d.MaxLength(), NumVars: d.NumVars(), NumClasses: d.NumClasses()}
	if err := srv.AddModel("ects", algo, meta); err != nil {
		t.Fatalf("add model: %v", err)
	}
	root := http.NewServeMux()
	root.Handle("/", srv.Handler())
	root.Handle("/v1/ingest", ingest.Handler(func(r *http.Request, onDecision func(ingest.Decision)) (*ingest.Pipeline, error) {
		return ingest.New(ingest.Config{Registry: srv, Model: "ects", Shards: 1, OnDecision: onDecision})
	}))
	hs := httptest.NewServer(root)
	t.Cleanup(hs.Close)
	return hs.URL, d
}

// TestRunIngestReplay replays an interleaved stream through the ingest
// endpoint and checks the client-side accounting: one decision per
// entity window, latency percentiles populated, and the server's
// summary counters round-tripped.
func TestRunIngestReplay(t *testing.T) {
	baseURL, d := startIngestServer(t)
	events := ingest.InterleaveInstances(d, "entity", 4)
	res, err := RunIngest(IngestConfig{BaseURL: baseURL, Events: events})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d: %+v", res.Errors, res)
	}
	if res.Events != len(events) {
		t.Errorf("events = %d, want %d", res.Events, len(events))
	}
	// Every instance is exactly one window, so one decision each.
	if res.Decisions != d.Len() {
		t.Errorf("decisions = %d, want %d", res.Decisions, d.Len())
	}
	if res.Summary.Windows != int64(d.Len()) || res.Summary.Events != int64(len(events)) {
		t.Errorf("summary = %+v, want %d windows / %d events", res.Summary.Stats, d.Len(), len(events))
	}
	if res.P50 <= 0 || res.P99 < res.P50 || res.Max < res.P99 {
		t.Errorf("latency percentiles inconsistent: p50=%v p99=%v max=%v", res.P50, res.P99, res.Max)
	}
	if res.Throughput <= 0 {
		t.Errorf("throughput = %v, want > 0", res.Throughput)
	}
	if s := res.String(); s == "" {
		t.Error("empty report")
	}
}

// TestRunIngestPaced drives the same stream at a fixed rate; the run
// must take at least the scheduled duration.
func TestRunIngestPaced(t *testing.T) {
	baseURL, d := startIngestServer(t)
	events := ingest.InterleaveInstances(d, "entity", 4)[:120]
	const eps = 2000.0
	res, err := RunIngest(IngestConfig{BaseURL: baseURL, Events: events, EPS: eps})
	if err != nil {
		t.Fatal(err)
	}
	wantMin := float64(len(events)-1) / eps // seconds
	if res.Elapsed.Seconds() < wantMin*0.9 {
		t.Errorf("paced run finished in %v, schedule requires ≥ %.3fs", res.Elapsed, wantMin)
	}
	if res.Throughput > eps*1.5 {
		t.Errorf("achieved %v events/s against a %v target", res.Throughput, eps)
	}
}

func TestRunIngestConfigErrors(t *testing.T) {
	if _, err := RunIngest(IngestConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := RunIngest(IngestConfig{BaseURL: "http://x"}); err == nil {
		t.Error("config with no events accepted")
	}
}
