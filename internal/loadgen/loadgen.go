// Package loadgen replays time-series instances against a running
// etsc-serve instance at a target request rate, measuring client-side
// latency percentiles and throughput, and optionally checking that every
// served decision matches an offline reference — the serving layer's
// answer to the framework's offline reproducibility requirement.
package loadgen

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/goetsc/goetsc/internal/obs"
)

// Mode selects the request shape.
type Mode string

const (
	// ModeClassify sends each instance as one POST /v1/classify.
	ModeClassify Mode = "classify"
	// ModeSession streams each instance through a session in chunks.
	ModeSession Mode = "session"
)

// Reference is an offline decision to compare a served decision against.
type Reference struct {
	Label    int
	Consumed int
}

// Config describes one load run.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Model is the served model name.
	Model string
	// Instances is the replay pool, each [variable][time]. Request i uses
	// instance i % len(Instances).
	Instances [][][]float64
	// RPS is the target request rate (instances per second). <= 0 means
	// unpaced: clients send as fast as they can.
	RPS float64
	// Clients is the number of concurrent workers; default 1.
	Clients int
	// Total is the number of instances to send; default len(Instances).
	Total int
	// Mode selects one-shot or streaming requests; default ModeClassify.
	Mode Mode
	// ChunkSize is the points-per-request batch in session mode; default 8.
	ChunkSize int
	// Timeout bounds each HTTP request; default 30s.
	Timeout time.Duration
	// References, when non-nil, holds the offline decision for each
	// instance (parallel to Instances); mismatching served decisions are
	// counted in Result.ParityMismatches.
	References []Reference
	// CollectTraces keeps one TraceRecord per replayed instance in
	// Result.Traces, for joining against the server journal's access
	// records (see Correlate). Tracing headers are always sent; this flag
	// only controls client-side retention.
	CollectTraces bool
	// Tenant, when set, is sent as the X-Etsc-Tenant header on every
	// request, attributing the load to one tenant's quota.
	Tenant string
}

func (c Config) withDefaults() (Config, error) {
	if c.BaseURL == "" || c.Model == "" {
		return c, fmt.Errorf("loadgen: BaseURL and Model are required")
	}
	if len(c.Instances) == 0 {
		return c, fmt.Errorf("loadgen: at least one instance is required")
	}
	if c.References != nil && len(c.References) != len(c.Instances) {
		return c, fmt.Errorf("loadgen: %d references for %d instances", len(c.References), len(c.Instances))
	}
	if c.Clients <= 0 {
		c.Clients = 1
	}
	if c.Total <= 0 {
		c.Total = len(c.Instances)
	}
	if c.Mode == "" {
		c.Mode = ModeClassify
	}
	if c.Mode != ModeClassify && c.Mode != ModeSession {
		return c, fmt.Errorf("loadgen: unknown mode %q", c.Mode)
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 8
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c, nil
}

// Result summarizes one load run. Latencies are per instance: in session
// mode one sample spans the whole create→decide→close conversation, and
// the Advance* fields additionally break out the per-batch /points
// requests — the cost of advancing the live cursor — which is what the
// incremental engine optimizes.
type Result struct {
	Mode             Mode          `json:"mode"`
	Sent             int           `json:"sent"`
	Errors           int           `json:"errors"`
	ParityChecked    int           `json:"parity_checked"`
	ParityMismatches int           `json:"parity_mismatches"`
	P50              time.Duration `json:"p50_ns"`
	P95              time.Duration `json:"p95_ns"`
	P99              time.Duration `json:"p99_ns"`
	Mean             time.Duration `json:"mean_ns"`
	Max              time.Duration `json:"max_ns"`
	Throughput       float64       `json:"throughput_rps"`
	Elapsed          time.Duration `json:"elapsed_ns"`

	// Shed counts instances the server rejected with 429/503 — admission
	// control doing its job under overload, reported separately from
	// Errors (real failures). Latency percentiles cover only admitted,
	// successful instances, so under overload P99 is the admitted p99.
	// Goodput is those instances per second of wall time.
	Shed     int     `json:"shed,omitempty"`
	ShedRate float64 `json:"shed_rate,omitempty"`
	Goodput  float64 `json:"goodput_rps,omitempty"`

	// Session mode only: latency of the individual /points batches.
	AdvanceCount int           `json:"advance_count,omitempty"`
	AdvanceP50   time.Duration `json:"advance_p50_ns,omitempty"`
	AdvanceP95   time.Duration `json:"advance_p95_ns,omitempty"`
	AdvanceP99   time.Duration `json:"advance_p99_ns,omitempty"`
	AdvanceMean  time.Duration `json:"advance_mean_ns,omitempty"`
	AdvanceMax   time.Duration `json:"advance_max_ns,omitempty"`

	// Traces holds one record per replayed instance when
	// Config.CollectTraces is set; Correlate joins them against the
	// server journal.
	Traces []TraceRecord `json:"traces,omitempty"`
}

// TraceRecord is the client side of one traced conversation: every HTTP
// request a replayed instance issued (one for classify; create, points
// batches and delete for a session) carried this trace ID.
type TraceRecord struct {
	Trace    string        `json:"trace"`
	Instance int           `json:"instance"`
	Requests int           `json:"requests"`
	Latency  time.Duration `json:"latency_ns"`
	Err      bool          `json:"err,omitempty"`
}

// String renders the human-readable report line.
func (r Result) String() string {
	s := fmt.Sprintf("%s: %d sent, %d errors, p50=%s p95=%s p99=%s mean=%s max=%s, %.1f req/s over %s",
		r.Mode, r.Sent, r.Errors,
		r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond), r.P99.Round(time.Microsecond),
		r.Mean.Round(time.Microsecond), r.Max.Round(time.Microsecond), r.Throughput, r.Elapsed.Round(time.Millisecond))
	if r.AdvanceCount > 0 {
		s += fmt.Sprintf("\n  advance: %d batches, p50=%s p95=%s p99=%s mean=%s max=%s",
			r.AdvanceCount,
			r.AdvanceP50.Round(time.Microsecond), r.AdvanceP95.Round(time.Microsecond),
			r.AdvanceP99.Round(time.Microsecond), r.AdvanceMean.Round(time.Microsecond),
			r.AdvanceMax.Round(time.Microsecond))
	}
	if r.Shed > 0 {
		s += fmt.Sprintf("\n  overload: %d shed (%.1f%%), goodput %.1f req/s, admitted p99=%s",
			r.Shed, r.ShedRate*100, r.Goodput, r.P99.Round(time.Microsecond))
	}
	if r.ParityChecked > 0 {
		s += fmt.Sprintf(", parity %d/%d", r.ParityChecked-r.ParityMismatches, r.ParityChecked)
	}
	return s
}

// decision is the served answer for one instance.
type decision struct {
	Label    int
	Consumed int
}

// Run drives the load: Clients workers pull paced jobs and replay
// instances until Total requests have been sent.
func Run(cfg Config) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	// One warm connection per client: the default transport keeps only
	// two idle connections per host, so an overload run with dozens of
	// clients would redial constantly and bill the handshakes to the
	// measured latency.
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = cfg.Clients + 2
	tr.MaxIdleConnsPerHost = cfg.Clients
	client := &http.Client{Timeout: cfg.Timeout, Transport: tr}

	// The pacer drops one token per request interval; unpaced runs use a
	// closed channel so receives never block.
	jobs := make(chan int)
	go func() {
		defer close(jobs)
		if cfg.RPS > 0 {
			interval := time.Duration(float64(time.Second) / cfg.RPS)
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			for i := 0; i < cfg.Total; i++ {
				<-ticker.C
				jobs <- i
			}
		} else {
			for i := 0; i < cfg.Total; i++ {
				jobs <- i
			}
		}
	}()

	type sample struct {
		latency  time.Duration
		advances []time.Duration // session mode: per /points batch
		err      error
		instance int
		dec      decision
		trace    obs.TraceID
		requests int
	}
	samples := make([]sample, 0, cfg.Total)
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				idx := i % len(cfg.Instances)
				// One trace per replayed instance: every request in the
				// conversation carries it, each with a fresh client span.
				tc := obs.NewTraceContext()
				t0 := time.Now()
				var dec decision
				var advances []time.Duration
				var err error
				var reqs int
				switch cfg.Mode {
				case ModeClassify:
					dec, err = classifyOnce(client, cfg.BaseURL, cfg.Model, cfg.Instances[idx], tc, cfg.Tenant)
					reqs = 1
				case ModeSession:
					dec, advances, reqs, err = streamOnce(client, cfg.BaseURL, cfg.Model, cfg.Instances[idx], cfg.ChunkSize, tc, cfg.Tenant)
				}
				s := sample{latency: time.Since(t0), advances: advances, err: err, instance: idx, dec: dec,
					trace: tc.Trace, requests: reqs}
				mu.Lock()
				samples = append(samples, s)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := Result{Mode: cfg.Mode, Sent: len(samples), Elapsed: elapsed}
	latencies := make([]time.Duration, 0, len(samples))
	var advances []time.Duration
	var sum, advSum time.Duration
	for _, s := range samples {
		if s.err != nil {
			if IsShed(s.err) {
				res.Shed++
			} else {
				res.Errors++
			}
			continue
		}
		latencies = append(latencies, s.latency)
		sum += s.latency
		if s.latency > res.Max {
			res.Max = s.latency
		}
		for _, a := range s.advances {
			advances = append(advances, a)
			advSum += a
			if a > res.AdvanceMax {
				res.AdvanceMax = a
			}
		}
		if cfg.References != nil {
			res.ParityChecked++
			ref := cfg.References[s.instance]
			if s.dec.Label != ref.Label || s.dec.Consumed != ref.Consumed {
				res.ParityMismatches++
			}
		}
	}
	if cfg.CollectTraces {
		res.Traces = make([]TraceRecord, 0, len(samples))
		for _, s := range samples {
			res.Traces = append(res.Traces, TraceRecord{
				Trace: s.trace.String(), Instance: s.instance,
				Requests: s.requests, Latency: s.latency, Err: s.err != nil,
			})
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	res.P50 = percentile(latencies, 0.50)
	res.P95 = percentile(latencies, 0.95)
	res.P99 = percentile(latencies, 0.99)
	if len(latencies) > 0 {
		res.Mean = sum / time.Duration(len(latencies))
	}
	if len(advances) > 0 {
		sort.Slice(advances, func(i, j int) bool { return advances[i] < advances[j] })
		res.AdvanceCount = len(advances)
		res.AdvanceP50 = percentile(advances, 0.50)
		res.AdvanceP95 = percentile(advances, 0.95)
		res.AdvanceP99 = percentile(advances, 0.99)
		res.AdvanceMean = advSum / time.Duration(len(advances))
	}
	if elapsed > 0 {
		res.Throughput = float64(len(samples)) / elapsed.Seconds()
		res.Goodput = float64(len(latencies)) / elapsed.Seconds()
	}
	if res.Sent > 0 {
		res.ShedRate = float64(res.Shed) / float64(res.Sent)
	}
	return res, nil
}

// statusError carries the HTTP status of a non-2xx response so callers
// can tell an admission-control rejection from a real failure.
type statusError struct {
	status int
	msg    string
}

func (e *statusError) Error() string { return e.msg }

// IsShed reports whether the error is a server-side admission rejection:
// 429 (tenant over quota) or 503 (overload shedding, breaker open,
// draining). Under deliberate overload these are the server working as
// designed, not failures.
func IsShed(err error) bool {
	var se *statusError
	return errors.As(err, &se) &&
		(se.status == http.StatusTooManyRequests || se.status == http.StatusServiceUnavailable)
}

// percentile reads the nearest-rank percentile from sorted samples.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// classifyOnce sends one /v1/classify request.
func classifyOnce(client *http.Client, baseURL, model string, values [][]float64, tc obs.TraceContext, tenant string) (decision, error) {
	var resp struct {
		Label    int `json:"label"`
		Consumed int `json:"consumed"`
	}
	err := postJSON(client, baseURL+"/v1/classify", tc, tenant,
		map[string]any{"model": model, "values": values}, &resp)
	return decision{Label: resp.Label, Consumed: resp.Consumed}, err
}

// sessionState mirrors the server's session JSON.
type sessionState struct {
	SessionID string `json:"session_id"`
	Status    string `json:"status"`
	Label     *int   `json:"label"`
	Consumed  *int   `json:"consumed"`
	Length    int    `json:"length"`
}

// streamOnce replays one instance through a streaming session and
// deletes the session afterwards. It returns the latency of each
// /points batch alongside the decision and the number of HTTP requests
// issued, so callers can separate cursor advance cost from session
// bookkeeping and join the conversation against the server journal.
func streamOnce(client *http.Client, baseURL, model string, values [][]float64, chunk int, tc obs.TraceContext, tenant string) (dec decision, advances []time.Duration, reqs int, err error) {
	var st sessionState
	reqs++
	if err := postJSON(client, baseURL+"/v1/sessions", tc, tenant, map[string]any{"model": model}, &st); err != nil {
		return decision{}, nil, reqs, err
	}
	base := baseURL + "/v1/sessions/" + st.SessionID
	defer func() {
		req, rerr := http.NewRequest(http.MethodDelete, base, nil)
		if rerr != nil {
			return
		}
		req.Header.Set(obs.TraceHeader, tc.Child().Header())
		if tenant != "" {
			req.Header.Set("X-Etsc-Tenant", tenant)
		}
		reqs++
		if resp, derr := client.Do(req); derr == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	n := len(values[0])
	advances = make([]time.Duration, 0, (n+chunk-1)/chunk)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		batch := make([][]float64, len(values))
		for v := range values {
			batch[v] = values[v][lo:hi]
		}
		t0 := time.Now()
		reqs++
		if err := postJSON(client, base+"/points", tc, tenant,
			map[string]any{"values": batch, "last": hi == n}, &st); err != nil {
			return decision{}, advances, reqs, err
		}
		advances = append(advances, time.Since(t0))
		if st.Status == "decided" {
			break
		}
	}
	if st.Status != "decided" || st.Label == nil || st.Consumed == nil {
		return decision{}, advances, reqs, fmt.Errorf("loadgen: session ended %q without a decision", st.Status)
	}
	return decision{Label: *st.Label, Consumed: *st.Consumed}, advances, reqs, nil
}

// postJSON sends one JSON request and decodes the JSON response,
// treating non-2xx statuses as errors carrying the server's message.
// Each request carries the conversation's trace ID under a fresh client
// span, matching what a traced production caller would send.
func postJSON(client *http.Client, url string, tc obs.TraceContext, tenant string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if tc.Valid() {
		req.Header.Set(obs.TraceHeader, tc.Child().Header())
	}
	if tenant != "" {
		req.Header.Set("X-Etsc-Tenant", tenant)
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var apiErr struct {
			Error string `json:"error"`
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		if json.Unmarshal(msg, &apiErr) == nil && apiErr.Error != "" {
			return &statusError{status: resp.StatusCode,
				msg: fmt.Sprintf("loadgen: %s: %d: %s", url, resp.StatusCode, apiErr.Error)}
		}
		return &statusError{status: resp.StatusCode,
			msg: fmt.Sprintf("loadgen: %s: status %d", url, resp.StatusCode)}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
