package loadgen

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/goetsc/goetsc/internal/obs"
)

// Churn mode: instead of replaying instances one conversation at a
// time, hold a large population of streaming sessions live at once and
// keep turning them over — create, advance in chunks, decide or abandon,
// close, create the next. This is the fleet router's sizing workload:
// every live session is a pinned hash slot plus a cursor on some
// replica, and the create/advance/close mix exercises placement,
// frozen-decision reads and pin teardown together. Latency is reported
// per phase, because a router that heals sessions pays on the advance
// path while one that mis-places them pays on create.

// ChurnConfig parameterizes one churn run.
type ChurnConfig struct {
	BaseURL string
	Model   string
	// Instances are the series to stream; session i streams instance
	// i % len(Instances).
	Instances [][][]float64
	// Sessions is the target concurrent live-session population.
	// Default 256.
	Sessions int
	// Total is how many sessions to run to completion (decided or
	// abandoned). Default 2×Sessions, so the population fully turns
	// over at least once after ramp-up.
	Total int
	// ChunkSize is points per /points batch. Default 8.
	ChunkSize int
	// Clients is the worker (and connection) count; each worker owns
	// Sessions/Clients session slots. Default 16.
	Clients int
	// AbandonEvery, when positive, abandons every k-th session while it
	// is still pending: the client walks away with a DELETE before
	// streaming any points — the evict slice of the create/advance/evict
	// mix. (Early classifiers decide within a few points, so any later
	// walk-away point would race the decision; abandoning pre-stream is
	// the one moment a session is deterministically pending.) Default 0:
	// stream everything to a decision.
	AbandonEvery int
	// Timeout bounds one request. Default 30s.
	Timeout time.Duration
	// References enables parity checking of decided sessions against
	// offline decisions, indexed like Instances.
	References []Reference
	// Tenant stamps X-Etsc-Tenant on every request.
	Tenant string
}

func (c ChurnConfig) withDefaults() (ChurnConfig, error) {
	if c.BaseURL == "" || c.Model == "" {
		return c, fmt.Errorf("loadgen: BaseURL and Model are required")
	}
	if len(c.Instances) == 0 {
		return c, fmt.Errorf("loadgen: at least one instance is required")
	}
	if c.Sessions <= 0 {
		c.Sessions = 256
	}
	if c.Total <= 0 {
		c.Total = 2 * c.Sessions
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 8
	}
	if c.Clients <= 0 {
		c.Clients = 16
	}
	if c.Clients > c.Sessions {
		c.Clients = c.Sessions
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c, nil
}

// PhaseStats is one request phase's latency distribution.
type PhaseStats struct {
	Count int           `json:"count"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
	Mean  time.Duration `json:"mean_ns"`
	Max   time.Duration `json:"max_ns"`
}

func phaseStats(samples []time.Duration) PhaseStats {
	if len(samples) == 0 {
		return PhaseStats{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum time.Duration
	for _, d := range samples {
		sum += d
	}
	return PhaseStats{
		Count: len(samples),
		P50:   percentile(samples, 0.50),
		P95:   percentile(samples, 0.95),
		P99:   percentile(samples, 0.99),
		Mean:  sum / time.Duration(len(samples)),
		Max:   samples[len(samples)-1],
	}
}

// ChurnResult is one churn run's outcome.
type ChurnResult struct {
	Sessions       int `json:"sessions"` // run to completion (decided + abandoned)
	Decided        int `json:"decided"`
	Abandoned      int `json:"abandoned"`
	Errors         int `json:"errors"`
	Shed           int `json:"shed"`
	PeakConcurrent int `json:"peak_concurrent"`

	Create  PhaseStats `json:"create"`
	Advance PhaseStats `json:"advance"`
	Close   PhaseStats `json:"close"`
	// Session measures whole-session wall time, create through close.
	Session PhaseStats `json:"session"`

	SessionsPerSec float64       `json:"sessions_per_sec"`
	AdvancesPerSec float64       `json:"advances_per_sec"`
	Elapsed        time.Duration `json:"elapsed_ns"`

	ParityChecked    int `json:"parity_checked"`
	ParityMismatches int `json:"parity_mismatches"`
}

func (r ChurnResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "churn: %d sessions (%d decided, %d abandoned, %d errors, %d shed), peak %d concurrent, %.1f sessions/s, %.0f advances/s in %s\n",
		r.Sessions, r.Decided, r.Abandoned, r.Errors, r.Shed, r.PeakConcurrent,
		r.SessionsPerSec, r.AdvancesPerSec, r.Elapsed.Round(time.Millisecond))
	phase := func(name string, p PhaseStats) {
		if p.Count == 0 {
			return
		}
		fmt.Fprintf(&b, "  %-8s n=%-7d p50 %-10s p95 %-10s p99 %-10s max %s\n", name, p.Count,
			p.P50.Round(time.Microsecond), p.P95.Round(time.Microsecond),
			p.P99.Round(time.Microsecond), p.Max.Round(time.Microsecond))
	}
	phase("create", r.Create)
	phase("advance", r.Advance)
	phase("close", r.Close)
	phase("session", r.Session)
	if r.ParityChecked > 0 {
		fmt.Fprintf(&b, "  parity: %d checked, %d mismatches", r.ParityChecked, r.ParityMismatches)
	}
	return strings.TrimRight(b.String(), "\n")
}

// churnSlot is one live session owned by a worker.
type churnSlot struct {
	idx     int // global session index
	id      string
	tc      obs.TraceContext
	values  [][]float64
	sent    int // points streamed so far
	batches int
	start   time.Time
	abandon bool
}

// churnWorker accumulates one worker's samples; merged after the run.
type churnWorker struct {
	create, advance, close, session []time.Duration
	decided, abandoned, errors      int
	shed, parityChecked, mismatches int
}

// RunChurn drives the churn workload and reports per-phase latency and
// session throughput. Request errors abandon the slot and count as
// Errors (sheds separately); the run itself only fails on setup
// problems.
func RunChurn(cfg ChurnConfig) (ChurnResult, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return ChurnResult{}, err
	}
	tr, _ := http.DefaultTransport.(*http.Transport)
	if tr != nil {
		tr = tr.Clone()
		tr.MaxIdleConns = cfg.Clients * 2
		tr.MaxIdleConnsPerHost = cfg.Clients
	}
	client := &http.Client{Timeout: cfg.Timeout}
	if tr != nil {
		client.Transport = tr
	}

	var (
		next     atomic.Int64 // next session index to start
		live     atomic.Int64
		peak     atomic.Int64
		advances atomic.Int64
	)
	perWorker := (cfg.Sessions + cfg.Clients - 1) / cfg.Clients

	start := time.Now()
	workers := make([]*churnWorker, cfg.Clients)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Clients; w++ {
		cw := &churnWorker{}
		workers[w] = cw
		wg.Add(1)
		go func() {
			defer wg.Done()
			slots := make([]*churnSlot, perWorker)
			for {
				progress := false
				for i := range slots {
					if slots[i] == nil {
						idx := int(next.Add(1)) - 1
						if idx >= cfg.Total {
							continue
						}
						progress = true
						if s := cw.createSession(client, cfg, idx); s != nil {
							slots[i] = s
							if cur := live.Add(1); cur > peak.Load() {
								peak.Store(cur) // racy max; close enough for a gauge
							}
						}
						continue
					}
					progress = true
					if cw.stepSession(client, cfg, slots[i], &advances) {
						live.Add(-1)
						slots[i] = nil
					}
				}
				if !progress {
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := ChurnResult{Elapsed: elapsed, PeakConcurrent: int(peak.Load())}
	var createS, advanceS, closeS, sessionS []time.Duration
	for _, cw := range workers {
		createS = append(createS, cw.create...)
		advanceS = append(advanceS, cw.advance...)
		closeS = append(closeS, cw.close...)
		sessionS = append(sessionS, cw.session...)
		res.Decided += cw.decided
		res.Abandoned += cw.abandoned
		res.Errors += cw.errors
		res.Shed += cw.shed
		res.ParityChecked += cw.parityChecked
		res.ParityMismatches += cw.mismatches
	}
	res.Sessions = res.Decided + res.Abandoned
	res.Create = phaseStats(createS)
	res.Advance = phaseStats(advanceS)
	res.Close = phaseStats(closeS)
	res.Session = phaseStats(sessionS)
	if elapsed > 0 {
		res.SessionsPerSec = float64(res.Sessions) / elapsed.Seconds()
		res.AdvancesPerSec = float64(advances.Load()) / elapsed.Seconds()
	}
	return res, nil
}

// createSession opens session idx; nil means the create failed (counted
// on the worker).
func (cw *churnWorker) createSession(client *http.Client, cfg ChurnConfig, idx int) *churnSlot {
	s := &churnSlot{
		idx:    idx,
		tc:     obs.NewTraceContext(),
		values: cfg.Instances[idx%len(cfg.Instances)],
		start:  time.Now(),
	}
	if cfg.AbandonEvery > 0 && idx%cfg.AbandonEvery == cfg.AbandonEvery-1 {
		s.abandon = true
	}
	var st sessionState
	t0 := time.Now()
	err := postJSON(client, cfg.BaseURL+"/v1/sessions", s.tc, cfg.Tenant,
		map[string]any{"model": cfg.Model}, &st)
	cw.create = append(cw.create, time.Since(t0))
	if err != nil {
		cw.fail(err)
		return nil
	}
	s.id = st.SessionID
	return s
}

// stepSession advances one slot by one chunk; true means the slot is
// finished (decided, abandoned, or failed) and was closed.
func (cw *churnWorker) stepSession(client *http.Client, cfg ChurnConfig, s *churnSlot, advances *atomic.Int64) bool {
	// The evict slice of the mix: marked sessions walk away while still
	// pending, exactly the client behavior TTL eviction and pin teardown
	// absorb at scale.
	if s.abandon {
		cw.abandoned++
		cw.closeSession(client, cfg, s)
		cw.session = append(cw.session, time.Since(s.start))
		return true
	}
	n := len(s.values[0])
	lo := s.sent
	hi := lo + cfg.ChunkSize
	if hi > n {
		hi = n
	}
	batch := make([][]float64, len(s.values))
	for v := range s.values {
		batch[v] = s.values[v][lo:hi]
	}
	var st sessionState
	t0 := time.Now()
	err := postJSON(client, cfg.BaseURL+"/v1/sessions/"+s.id+"/points", s.tc, cfg.Tenant,
		map[string]any{"values": batch, "last": hi == n}, &st)
	cw.advance = append(cw.advance, time.Since(t0))
	if err != nil {
		cw.fail(err)
		cw.closeSession(client, cfg, s)
		return true
	}
	advances.Add(1)
	s.sent = hi
	s.batches++

	if st.Status == "decided" {
		if len(cfg.References) > 0 && st.Label != nil && st.Consumed != nil {
			ref := cfg.References[s.idx%len(cfg.References)]
			cw.parityChecked++
			if *st.Label != ref.Label || *st.Consumed != ref.Consumed {
				cw.mismatches++
			}
		}
		cw.decided++
		cw.closeSession(client, cfg, s)
		cw.session = append(cw.session, time.Since(s.start))
		return true
	}
	if s.sent >= n {
		// Streamed everything with last=true yet still pending: the
		// server contract says this cannot happen.
		cw.errors++
		cw.closeSession(client, cfg, s)
		return true
	}
	return false
}

func (cw *churnWorker) closeSession(client *http.Client, cfg ChurnConfig, s *churnSlot) {
	if s.id == "" {
		return
	}
	req, err := http.NewRequest(http.MethodDelete, cfg.BaseURL+"/v1/sessions/"+s.id, nil)
	if err != nil {
		return
	}
	req.Header.Set(obs.TraceHeader, s.tc.Child().Header())
	if cfg.Tenant != "" {
		req.Header.Set("X-Etsc-Tenant", cfg.Tenant)
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	cw.close = append(cw.close, time.Since(t0))
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

func (cw *churnWorker) fail(err error) {
	if IsShed(err) {
		cw.shed++
	} else {
		cw.errors++
	}
}
