package loadgen

import (
	"net/http/httptest"
	"testing"

	"github.com/goetsc/goetsc/internal/bench"
	"github.com/goetsc/goetsc/internal/persist"
	"github.com/goetsc/goetsc/internal/serve"
	"github.com/goetsc/goetsc/internal/synth"
)

// startServer trains one small ECTS model and serves it from an httptest
// server, returning the base URL and the offline references.
func startServer(t *testing.T) (baseURL string, instances [][][]float64, refs []Reference) {
	t.Helper()
	d := synth.Dataset("loadgen-uni", 1, 2, 24, 40, 13)
	f := bench.AlgorithmsByName(d.Name, bench.Fast, 1, []string{"ECTS"})[0]
	algo := f.New()
	if err := algo.Fit(d); err != nil {
		t.Fatalf("fit: %v", err)
	}
	srv := serve.New(serve.Config{})
	meta := persist.Meta{Dataset: d.Name, Length: d.MaxLength(), NumVars: d.NumVars(), NumClasses: d.NumClasses()}
	if err := srv.AddModel("ects", algo, meta); err != nil {
		t.Fatalf("add model: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)

	for _, in := range d.Instances {
		instances = append(instances, in.Values)
		label, consumed := algo.Classify(in)
		if consumed > in.Length() {
			consumed = in.Length()
		}
		refs = append(refs, Reference{Label: label, Consumed: consumed})
	}
	return hs.URL, instances, refs
}

func TestRunClassifyParity(t *testing.T) {
	baseURL, instances, refs := startServer(t)
	res, err := Run(Config{
		BaseURL: baseURL, Model: "ects",
		Instances: instances, References: refs,
		Clients: 4, Total: len(instances),
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Sent != len(instances) || res.Errors != 0 {
		t.Fatalf("result %+v: want %d sent, 0 errors", res, len(instances))
	}
	if res.ParityChecked != len(instances) || res.ParityMismatches != 0 {
		t.Fatalf("parity %d/%d checked with %d mismatches", res.ParityChecked, len(instances), res.ParityMismatches)
	}
	if res.P50 <= 0 || res.P99 < res.P50 || res.Throughput <= 0 {
		t.Fatalf("implausible latency stats: %+v", res)
	}
}

func TestRunSessionParity(t *testing.T) {
	baseURL, instances, refs := startServer(t)
	res, err := Run(Config{
		BaseURL: baseURL, Model: "ects",
		Instances: instances, References: refs,
		Clients: 4, Total: len(instances),
		Mode: ModeSession, ChunkSize: 5,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Errors != 0 || res.ParityMismatches != 0 {
		t.Fatalf("session run: %+v", res)
	}
}

func TestRunPacing(t *testing.T) {
	baseURL, instances, _ := startServer(t)
	// 20 requests at 200 RPS should take roughly 100ms, never finish
	// instantaneously.
	res, err := Run(Config{
		BaseURL: baseURL, Model: "ects",
		Instances: instances, Clients: 2, Total: 20, RPS: 200,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Elapsed.Milliseconds() < 80 {
		t.Fatalf("paced run finished in %s, expected ~100ms at 200 RPS", res.Elapsed)
	}
	if res.Throughput > 300 {
		t.Fatalf("throughput %.1f req/s exceeds the 200 RPS pace", res.Throughput)
	}
}

func TestRunConfigErrors(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config should fail")
	}
	if _, err := Run(Config{BaseURL: "http://x", Model: "m"}); err == nil {
		t.Fatal("no instances should fail")
	}
	if _, err := Run(Config{BaseURL: "http://x", Model: "m",
		Instances: [][][]float64{{{1}}}, Mode: "bogus"}); err == nil {
		t.Fatal("unknown mode should fail")
	}
	if _, err := Run(Config{BaseURL: "http://x", Model: "m",
		Instances:  [][][]float64{{{1}}, {{2}}},
		References: []Reference{{}}}); err == nil {
		t.Fatal("reference length mismatch should fail")
	}
}
