package loadgen

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// Trace correlation joins the client side of a load run (Result.Traces)
// against the server side (the journal's "access" records) on trace ID.
// The difference between a trace's client wall time and the sum of its
// server-side wall times is everything the server never saw: network,
// client-side serialization, and queueing in front of the listener —
// exactly the gap that distinguishes "the server is slow" from "the
// path to the server is slow".

// Correlation is the per-run join report.
type Correlation struct {
	ClientTraces  int `json:"client_traces"`
	Matched       int `json:"matched"`
	Unmatched     int `json:"unmatched"`
	ServerRecords int `json:"server_records"` // access records under matched traces

	// Per-trace client wall time (whole conversation).
	ClientP50 time.Duration `json:"client_p50_ns"`
	ClientP99 time.Duration `json:"client_p99_ns"`
	// Per-trace sum of server-side wall times.
	ServerP50 time.Duration `json:"server_p50_ns"`
	ServerP99 time.Duration `json:"server_p99_ns"`
	// Per-trace client minus server: transport + client overhead.
	OverheadP50  time.Duration `json:"overhead_p50_ns"`
	OverheadP99  time.Duration `json:"overhead_p99_ns"`
	OverheadMean time.Duration `json:"overhead_mean_ns"`
}

// String renders the human-readable report.
func (c Correlation) String() string {
	s := fmt.Sprintf("trace correlation: %d/%d client traces matched in journal (%d server records)",
		c.Matched, c.ClientTraces, c.ServerRecords)
	if c.Unmatched > 0 {
		s += fmt.Sprintf(", %d UNMATCHED", c.Unmatched)
	}
	if c.Matched > 0 {
		s += fmt.Sprintf("\n  client wall   p50=%s p99=%s\n  server wall   p50=%s p99=%s\n  overhead      p50=%s p99=%s mean=%s (client-side + transport)",
			c.ClientP50.Round(time.Microsecond), c.ClientP99.Round(time.Microsecond),
			c.ServerP50.Round(time.Microsecond), c.ServerP99.Round(time.Microsecond),
			c.OverheadP50.Round(time.Microsecond), c.OverheadP99.Round(time.Microsecond),
			c.OverheadMean.Round(time.Microsecond))
	}
	return s
}

// Correlate joins a load run's trace records against a server journal
// stream (JSONL; non-access records are skipped). The run must have been
// made with Config.CollectTraces.
func Correlate(res Result, journal io.Reader) (Correlation, error) {
	if len(res.Traces) == 0 {
		return Correlation{}, fmt.Errorf("loadgen: result has no trace records (set Config.CollectTraces)")
	}
	type serverSide struct {
		wall  time.Duration
		count int
	}
	server := make(map[string]*serverSide)
	sc := bufio.NewScanner(journal)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec struct {
			Type   string  `json:"type"`
			Trace  string  `json:"trace"`
			WallMS float64 `json:"wall_ms"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			continue // journals interleave other shapes; skip quietly
		}
		if rec.Type != "access" || rec.Trace == "" {
			continue
		}
		ss := server[rec.Trace]
		if ss == nil {
			ss = &serverSide{}
			server[rec.Trace] = ss
		}
		ss.wall += time.Duration(rec.WallMS * float64(time.Millisecond))
		ss.count++
	}
	if err := sc.Err(); err != nil {
		return Correlation{}, fmt.Errorf("loadgen: reading journal: %w", err)
	}

	c := Correlation{ClientTraces: len(res.Traces)}
	var clientW, serverW, overhead []time.Duration
	var overheadSum time.Duration
	for _, tr := range res.Traces {
		ss, ok := server[tr.Trace]
		if !ok {
			c.Unmatched++
			continue
		}
		c.Matched++
		c.ServerRecords += ss.count
		clientW = append(clientW, tr.Latency)
		serverW = append(serverW, ss.wall)
		d := tr.Latency - ss.wall
		if d < 0 {
			d = 0 // sub-ms rounding in wall_ms can nudge past the client clock
		}
		overhead = append(overhead, d)
		overheadSum += d
	}
	for _, s := range [][]time.Duration{clientW, serverW, overhead} {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	c.ClientP50, c.ClientP99 = percentile(clientW, 0.50), percentile(clientW, 0.99)
	c.ServerP50, c.ServerP99 = percentile(serverW, 0.50), percentile(serverW, 0.99)
	c.OverheadP50, c.OverheadP99 = percentile(overhead, 0.50), percentile(overhead, 0.99)
	if len(overhead) > 0 {
		c.OverheadMean = overheadSum / time.Duration(len(overhead))
	}
	return c, nil
}

// CorrelateFile is Correlate against a journal file on disk.
func CorrelateFile(res Result, path string) (Correlation, error) {
	f, err := os.Open(path)
	if err != nil {
		return Correlation{}, fmt.Errorf("loadgen: open journal: %w", err)
	}
	defer f.Close()
	return Correlate(res, f)
}
