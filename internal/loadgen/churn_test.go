package loadgen

import (
	"net/http/httptest"
	"testing"

	"github.com/goetsc/goetsc/internal/bench"
	"github.com/goetsc/goetsc/internal/persist"
	"github.com/goetsc/goetsc/internal/serve"
	"github.com/goetsc/goetsc/internal/synth"
)

// startChurnServer is startServer with enough workers and queue that a
// churning client population measures routing, not admission control.
func startChurnServer(t *testing.T) (baseURL string, instances [][][]float64, refs []Reference) {
	t.Helper()
	d := synth.Dataset("loadgen-uni", 1, 2, 24, 40, 13)
	f := bench.AlgorithmsByName(d.Name, bench.Fast, 1, []string{"ECTS"})[0]
	algo := f.New()
	if err := algo.Fit(d); err != nil {
		t.Fatalf("fit: %v", err)
	}
	srv := serve.New(serve.Config{Workers: 8, QueueDepth: 256, MaxSessions: 1024})
	meta := persist.Meta{Dataset: d.Name, Length: d.MaxLength(), NumVars: d.NumVars(), NumClasses: d.NumClasses()}
	if err := srv.AddModel("ects", algo, meta); err != nil {
		t.Fatalf("add model: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(srv.Close)

	for _, in := range d.Instances {
		instances = append(instances, in.Values)
		label, consumed := algo.Classify(in)
		if consumed > in.Length() {
			consumed = in.Length()
		}
		refs = append(refs, Reference{Label: label, Consumed: consumed})
	}
	return hs.URL, instances, refs
}

// TestRunChurnMix: the create/advance/evict mix completes every session
// (decided or deliberately abandoned), keeps parity on every decision,
// and reports per-phase latencies.
func TestRunChurnMix(t *testing.T) {
	baseURL, instances, refs := startChurnServer(t)
	res, err := RunChurn(ChurnConfig{
		BaseURL: baseURL, Model: "ects",
		Instances: instances, References: refs,
		Sessions: 16, Total: 48, ChunkSize: 6,
		Clients: 8, AbandonEvery: 4,
	})
	if err != nil {
		t.Fatalf("churn: %v", err)
	}
	if res.Errors != 0 || res.Shed != 0 {
		t.Fatalf("churn saw %d errors, %d shed: %s", res.Errors, res.Shed, res)
	}
	if res.Sessions != 48 {
		t.Fatalf("completed %d sessions, want 48: %s", res.Sessions, res)
	}
	if res.Decided == 0 || res.Abandoned == 0 {
		t.Fatalf("mix degenerate: %d decided, %d abandoned", res.Decided, res.Abandoned)
	}
	if res.Decided+res.Abandoned != res.Sessions {
		t.Fatalf("decided %d + abandoned %d != sessions %d", res.Decided, res.Abandoned, res.Sessions)
	}
	if res.ParityChecked != res.Decided || res.ParityMismatches != 0 {
		t.Fatalf("parity %d/%d checked, %d mismatches", res.ParityChecked, res.Decided, res.ParityMismatches)
	}
	if res.Create.Count != 48 || res.Advance.Count == 0 || res.Close.Count == 0 {
		t.Fatalf("phase counts create=%d advance=%d close=%d", res.Create.Count, res.Advance.Count, res.Close.Count)
	}
	if res.Create.P50 <= 0 || res.Advance.P99 < res.Advance.P50 {
		t.Fatalf("implausible phase latencies: %s", res)
	}
	if res.SessionsPerSec <= 0 || res.PeakConcurrent < 1 {
		t.Fatalf("implausible throughput: %s", res)
	}
}

// TestRunChurnDefaultsValidation: the config guards.
func TestRunChurnDefaultsValidation(t *testing.T) {
	if _, err := RunChurn(ChurnConfig{}); err == nil {
		t.Fatal("empty config must error")
	}
	if _, err := RunChurn(ChurnConfig{BaseURL: "http://x", Model: "m"}); err == nil {
		t.Fatal("config without instances must error")
	}
	cfg, err := ChurnConfig{BaseURL: "http://x", Model: "m", Instances: [][][]float64{{{1}}}}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Sessions != 256 || cfg.Total != 512 || cfg.ChunkSize != 8 || cfg.Clients != 16 {
		t.Fatalf("defaults = %+v", cfg)
	}
}
