package loadgen

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/goetsc/goetsc/internal/ingest"
)

// IngestConfig describes one continuous-ingest replay: an interleaved
// entity event stream driven at a target events/sec through one
// streaming POST /v1/ingest request. Per-entity ordering is preserved
// by construction — the stream is one connection, events go out in
// slice order.
type IngestConfig struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Path is the ingest endpoint; default "/v1/ingest".
	Path string
	// Events is the interleaved stream to replay, in order.
	Events []ingest.Event
	// EPS is the target event rate (events per second). <= 0 replays
	// unpaced.
	EPS float64
	// Timeout bounds the whole streaming request; default 5m.
	Timeout time.Duration
}

func (c IngestConfig) withDefaults() (IngestConfig, error) {
	if c.BaseURL == "" {
		return c, fmt.Errorf("loadgen: BaseURL is required")
	}
	if len(c.Events) == 0 {
		return c, fmt.Errorf("loadgen: at least one event is required")
	}
	if c.Path == "" {
		c.Path = "/v1/ingest"
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Minute
	}
	return c, nil
}

// IngestResult summarizes one ingest replay. Decision latency is
// client-observed: the gap between sending an entity's most recent
// event and that entity's decision line arriving — the freshness of the
// pipeline's answers as the stream flows. Churn counters come from the
// server's trailing summary line.
type IngestResult struct {
	Events     int            `json:"events"`
	Decisions  int            `json:"decisions"`
	Errors     int            `json:"errors"`
	P50        time.Duration  `json:"p50_ns"`
	P95        time.Duration  `json:"p95_ns"`
	P99        time.Duration  `json:"p99_ns"`
	Mean       time.Duration  `json:"mean_ns"`
	Max        time.Duration  `json:"max_ns"`
	Throughput float64        `json:"throughput_eps"`
	Elapsed    time.Duration  `json:"elapsed_ns"`
	Summary    ingest.Summary `json:"summary"`
}

// String renders the human-readable report line.
func (r IngestResult) String() string {
	s := fmt.Sprintf("ingest: %d events, %d decisions, p50=%s p95=%s p99=%s mean=%s max=%s, %.1f events/s over %s",
		r.Events, r.Decisions,
		r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond), r.P99.Round(time.Microsecond),
		r.Mean.Round(time.Microsecond), r.Max.Round(time.Microsecond), r.Throughput, r.Elapsed.Round(time.Millisecond))
	st := r.Summary.Stats
	s += fmt.Sprintf("\n  churn: %d entities created, %d evicted, %d windows, %d late, %d shed",
		st.EntitiesCreated, st.EntitiesEvicted, st.Windows, st.Late, st.Shed)
	if st.DriftTrips > 0 || st.Retrains > 0 {
		s += fmt.Sprintf("\n  drift: %d trips, %d retrains (%d failed), %d swaps",
			st.DriftTrips, st.Retrains, st.RetrainFailures, st.Swaps)
	}
	return s
}

// RunIngest streams the events through one NDJSON request, reading
// decision lines as they arrive. The server's backpressure propagates
// into the pacer: a full pipeline slows the body write, so the achieved
// rate reports what the server actually sustained.
func RunIngest(cfg IngestConfig) (IngestResult, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return IngestResult{}, err
	}
	// lastSend tracks, per entity, when its most recent event went out;
	// decision latency for the entity reads and clears it.
	var mu sync.Mutex
	lastSend := make(map[string]time.Time)

	pr, pw := io.Pipe()
	start := time.Now()
	writeErr := make(chan error, 1)
	go func() {
		defer pw.Close()
		enc := bufio.NewWriter(pw)
		var interval time.Duration
		if cfg.EPS > 0 {
			interval = time.Duration(float64(time.Second) / cfg.EPS)
		}
		for i, ev := range cfg.Events {
			if interval > 0 {
				// Absolute schedule, not sleep-per-event: drift from a slow
				// write is made up instead of compounding.
				if wait := start.Add(time.Duration(i) * interval).Sub(time.Now()); wait > 0 {
					time.Sleep(wait)
				}
			}
			b, err := json.Marshal(ev)
			if err != nil {
				writeErr <- err
				return
			}
			mu.Lock()
			lastSend[ev.Entity] = time.Now()
			mu.Unlock()
			enc.Write(b)
			enc.WriteByte('\n')
			if interval > 0 || i%64 == 63 {
				// Paced streams flush per event so the server sees them on
				// schedule; unpaced streams batch for throughput.
				if err := enc.Flush(); err != nil {
					writeErr <- err
					return
				}
			}
		}
		writeErr <- enc.Flush()
	}()

	req, err := http.NewRequest(http.MethodPost, cfg.BaseURL+cfg.Path, pr)
	if err != nil {
		return IngestResult{}, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	client := &http.Client{Timeout: cfg.Timeout}
	resp, err := client.Do(req)
	if err != nil {
		return IngestResult{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return IngestResult{}, fmt.Errorf("loadgen: ingest: status %d: %s", resp.StatusCode, msg)
	}

	res := IngestResult{Events: len(cfg.Events)}
	var latencies []time.Duration
	var sum time.Duration
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Summary bool   `json:"summary"`
			Entity  string `json:"entity"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			res.Errors++
			continue
		}
		if probe.Summary {
			if err := json.Unmarshal(line, &res.Summary); err != nil {
				res.Errors++
			}
			continue
		}
		now := time.Now()
		res.Decisions++
		mu.Lock()
		sent, ok := lastSend[probe.Entity]
		mu.Unlock()
		if ok {
			lat := now.Sub(sent)
			latencies = append(latencies, lat)
			sum += lat
			if lat > res.Max {
				res.Max = lat
			}
		}
	}
	if err := sc.Err(); err != nil {
		return res, fmt.Errorf("loadgen: ingest: reading response: %w", err)
	}
	if err := <-writeErr; err != nil {
		return res, fmt.Errorf("loadgen: ingest: writing stream: %w", err)
	}
	if res.Summary.ReadError != "" {
		return res, fmt.Errorf("loadgen: ingest: server read error: %s", res.Summary.ReadError)
	}
	res.Elapsed = time.Since(start)
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	res.P50 = percentile(latencies, 0.50)
	res.P95 = percentile(latencies, 0.95)
	res.P99 = percentile(latencies, 0.99)
	if len(latencies) > 0 {
		res.Mean = sum / time.Duration(len(latencies))
	}
	if res.Elapsed > 0 {
		res.Throughput = float64(res.Events) / res.Elapsed.Seconds()
	}
	return res, nil
}
