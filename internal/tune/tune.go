// Package tune adds MultiETSC-style hyper-parameter selection to the
// framework — the paper's stated future work ("incorporate hyper parameter
// tuning techniques as in [31]"). A candidate grid of configurations is
// scored by internal cross validation on a user metric (the harmonic mean
// by default) and the winner is refitted on the full training data.
package tune

import (
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/goetsc/goetsc/internal/core"
	"github.com/goetsc/goetsc/internal/metrics"
	"github.com/goetsc/goetsc/internal/obs"
	"github.com/goetsc/goetsc/internal/sched"
	ts "github.com/goetsc/goetsc/internal/timeseries"
)

// Candidate is one configuration under consideration.
type Candidate struct {
	// Label names the configuration in reports (e.g. "TEASER S=10").
	Label string
	// New builds an untrained classifier with this configuration.
	New core.Factory
}

// Config controls the selection procedure.
type Config struct {
	// Folds is the internal cross-validation fold count; default 2 (cheap
	// but unbiased enough for ranking configurations).
	Folds int
	// Seed drives fold assignment.
	Seed int64
	// Metric scores a cross-validated result; higher is better. Default:
	// the harmonic mean of accuracy and earliness.
	Metric func(metrics.Result) float64
	// Obs, when non-nil, receives one child span per candidate (with the
	// nested fold/fit/classify spans). The zero value is a no-op.
	Obs *obs.Span
	// Pool, when non-nil, cross-validates candidates (and the folds
	// within each) concurrently. Scores land in candidate-indexed slots
	// and ties break on the lower index, so the selected winner is
	// identical at any worker count. A nil pool evaluates serially.
	Pool *sched.Pool
}

func (c Config) withDefaults() Config {
	if c.Folds <= 0 {
		c.Folds = 2
	}
	if c.Metric == nil {
		c.Metric = func(m metrics.Result) float64 { return m.HarmonicMean }
	}
	return c
}

// Score is one candidate's cross-validated outcome.
type Score struct {
	Label  string
	Value  float64
	Result metrics.Result
}

// Select cross-validates every candidate on the training data and returns
// the winner plus all scores (in candidate order).
func Select(candidates []Candidate, train *ts.Dataset, cfg Config) (Candidate, []Score, error) {
	if len(candidates) == 0 {
		return Candidate{}, nil, fmt.Errorf("tune: no candidates")
	}
	cfg = cfg.withDefaults()
	// Candidates are independent, so they cross-validate concurrently into
	// index-addressed slots; the winner scan below runs serially in
	// candidate order, so the selection matches the serial loop exactly.
	scores := make([]Score, len(candidates))
	errs := make([]error, len(candidates))
	var abort atomic.Bool
	cfg.Pool.ForEach(len(candidates), func(i int) {
		if abort.Load() {
			return
		}
		cand := candidates[i]
		span := cfg.Obs.Start("candidate", obs.String("label", cand.Label), obs.Int("index", i))
		// A panicking candidate costs only its own slot: the recover runs
		// here (and inside Evaluate's fold tasks), the stack is journaled,
		// and selection reports the candidate as errored instead of
		// crashing the grid.
		var avg metrics.Result
		err := sched.Protect(func() error {
			var evalErr error
			avg, _, evalErr = core.Evaluate(cand.New, train, core.EvalConfig{
				Folds: cfg.Folds, Seed: cfg.Seed, Obs: span, Pool: cfg.Pool})
			return evalErr
		})
		if err != nil {
			var pe *sched.PanicError
			if errors.As(err, &pe) {
				span.Event("panic", obs.String("value", fmt.Sprint(pe.Value)),
					obs.String("stack", string(pe.Stack)))
			}
			span.End()
			errs[i] = err
			abort.Store(true)
			return
		}
		value := cfg.Metric(avg)
		span.SetAttr(obs.Float("score", value))
		span.End()
		scores[i] = Score{Label: cand.Label, Value: value, Result: avg}
	})
	bestIdx := -1
	for i := range candidates {
		if errs[i] != nil {
			return Candidate{}, nil, fmt.Errorf("tune: candidate %q: %w", candidates[i].Label, errs[i])
		}
		if bestIdx < 0 || scores[i].Value > scores[bestIdx].Value {
			bestIdx = i
		}
	}
	return candidates[bestIdx], scores, nil
}

// Tuned is an EarlyClassifier that selects among candidate configurations
// at Fit time and then behaves as the winner. It reports the winner's name
// suffixed with "(tuned)" until fitted.
type Tuned struct {
	// Candidates is the configuration grid (required, non-empty).
	Candidates []Candidate
	// Cfg controls the internal selection.
	Cfg Config

	chosen      core.EarlyClassifier
	chosenLabel string
}

// NewTuned wraps a candidate grid.
func NewTuned(candidates []Candidate, cfg Config) *Tuned {
	return &Tuned{Candidates: candidates, Cfg: cfg}
}

// Name implements core.EarlyClassifier.
func (t *Tuned) Name() string {
	if t.chosen != nil {
		return t.chosen.Name()
	}
	return "TUNED"
}

// ChosenLabel reports which candidate won (empty before Fit).
func (t *Tuned) ChosenLabel() string { return t.chosenLabel }

// Multivariate reports the capability of the first candidate (grids are
// expected to be homogeneous in this respect).
func (t *Tuned) Multivariate() bool {
	if len(t.Candidates) == 0 {
		return false
	}
	return core.IsMultivariate(t.Candidates[0].New())
}

// Fit selects the best candidate by internal cross validation and refits
// it on the full training data.
func (t *Tuned) Fit(train *ts.Dataset) error {
	best, _, err := Select(t.Candidates, train, t.Cfg)
	if err != nil {
		return err
	}
	t.chosen = best.New()
	t.chosenLabel = best.Label
	return t.chosen.Fit(train)
}

// Classify delegates to the selected configuration.
func (t *Tuned) Classify(in ts.Instance) (int, int) {
	return t.chosen.Classify(in)
}
