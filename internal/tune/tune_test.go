package tune

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"github.com/goetsc/goetsc/internal/core"
	"github.com/goetsc/goetsc/internal/metrics"
	"github.com/goetsc/goetsc/internal/sched"
	ts "github.com/goetsc/goetsc/internal/timeseries"
)

// stubAlgo is a test classifier with a controllable decision point: it
// predicts via the running mean threshold but always consumes `at` points.
type stubAlgo struct {
	at  int
	mid float64
	bad bool // when set, predictions are inverted (a bad configuration)
}

func (s *stubAlgo) Name() string { return "STUB" }

func (s *stubAlgo) Fit(train *ts.Dataset) error {
	var sum0, sum1 float64
	var n0, n1 int
	for _, in := range train.Instances {
		for _, v := range in.Values[0] {
			if in.Label == 0 {
				sum0 += v
				n0++
			} else {
				sum1 += v
				n1++
			}
		}
	}
	s.mid = (sum0/float64(n0) + sum1/float64(n1)) / 2
	return nil
}

func (s *stubAlgo) Classify(in ts.Instance) (int, int) {
	at := s.at
	if at > in.Length() {
		at = in.Length()
	}
	var sum float64
	for _, v := range in.Values[0][:at] {
		sum += v
	}
	label := 0
	if sum/float64(at) > s.mid {
		label = 1
	}
	if s.bad {
		label = 1 - label
	}
	return label, at
}

func offsetDataset(rng *rand.Rand, n, length int) *ts.Dataset {
	d := &ts.Dataset{Name: "d"}
	for i := 0; i < n; i++ {
		c := i % 2
		row := make([]float64, length)
		for t := range row {
			row[t] = float64(c)*4 + rng.NormFloat64()*0.3
		}
		d.Instances = append(d.Instances, ts.Instance{Values: [][]float64{row}, Label: c})
	}
	return d
}

func TestSelectPrefersEarlyAccurateCandidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := offsetDataset(rng, 60, 20)
	candidates := []Candidate{
		{Label: "late", New: func() core.EarlyClassifier { return &stubAlgo{at: 20} }},
		{Label: "early", New: func() core.EarlyClassifier { return &stubAlgo{at: 4} }},
		{Label: "broken", New: func() core.EarlyClassifier { return &stubAlgo{at: 4, bad: true} }},
	}
	best, scores, err := Select(candidates, d, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if best.Label != "early" {
		t.Fatalf("selected %q, want early (scores: %+v)", best.Label, scores)
	}
	if len(scores) != 3 {
		t.Fatalf("scores = %d", len(scores))
	}
	// Early accurate wins on harmonic mean; the late candidate's HM is 0
	// (earliness 1) just like the broken one's (accuracy 0).
	if !(scores[1].Value > scores[0].Value && scores[1].Value > scores[2].Value) {
		t.Fatalf("score ordering wrong: %+v", scores)
	}
}

func TestSelectCustomMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := offsetDataset(rng, 40, 20)
	candidates := []Candidate{
		{Label: "late", New: func() core.EarlyClassifier { return &stubAlgo{at: 20} }},
		{Label: "early-bad", New: func() core.EarlyClassifier { return &stubAlgo{at: 2, bad: true} }},
	}
	// Pure accuracy must prefer the late accurate candidate.
	best, _, err := Select(candidates, d, Config{
		Seed:   2,
		Metric: func(m metrics.Result) float64 { return m.Accuracy },
	})
	if err != nil {
		t.Fatal(err)
	}
	if best.Label != "late" {
		t.Fatalf("accuracy metric selected %q", best.Label)
	}
}

func TestTunedLifecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := offsetDataset(rng, 60, 20)
	tuned := NewTuned([]Candidate{
		{Label: "late", New: func() core.EarlyClassifier { return &stubAlgo{at: 20} }},
		{Label: "early", New: func() core.EarlyClassifier { return &stubAlgo{at: 4} }},
	}, Config{Seed: 3})
	if tuned.Name() != "TUNED" {
		t.Fatalf("pre-fit name = %q", tuned.Name())
	}
	if err := tuned.Fit(d); err != nil {
		t.Fatal(err)
	}
	if tuned.ChosenLabel() != "early" {
		t.Fatalf("chosen = %q", tuned.ChosenLabel())
	}
	if tuned.Name() != "STUB" {
		t.Fatalf("post-fit name = %q", tuned.Name())
	}
	correct := 0
	for _, in := range d.Instances {
		label, consumed := tuned.Classify(in)
		if consumed != 4 {
			t.Fatalf("consumed = %d, want the early candidate's 4", consumed)
		}
		if label == in.Label {
			correct++
		}
	}
	if correct < 55 {
		t.Fatalf("tuned accuracy = %d/60", correct)
	}
}

// panicStub panics during Fit, for candidate isolation tests.
type panicStub struct{ stubAlgo }

func (p *panicStub) Fit(train *ts.Dataset) error { panic("injected candidate panic") }

func TestSelectIsolatesCandidatePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := offsetDataset(rng, 40, 20)
	candidates := []Candidate{
		{Label: "good", New: func() core.EarlyClassifier { return &stubAlgo{at: 4} }},
		{Label: "explosive", New: func() core.EarlyClassifier { return &panicStub{} }},
	}
	_, _, err := Select(candidates, d, Config{Seed: 5})
	if err == nil {
		t.Fatal("panicking candidate did not surface as an error")
	}
	var pe *sched.PanicError
	if !errors.As(err, &pe) || pe.Value != "injected candidate panic" {
		t.Fatalf("err = %v, want *sched.PanicError with the injected value", err)
	}
	if !strings.Contains(err.Error(), `"explosive"`) {
		t.Fatalf("error does not name the candidate: %v", err)
	}
}

func TestSelectErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := offsetDataset(rng, 20, 10)
	if _, _, err := Select(nil, d, Config{}); err == nil {
		t.Fatal("empty candidates accepted")
	}
}

func TestTunedMultivariateCapability(t *testing.T) {
	tuned := NewTuned([]Candidate{
		{Label: "uni", New: func() core.EarlyClassifier { return &stubAlgo{at: 3} }},
	}, Config{})
	if tuned.Multivariate() {
		t.Fatal("univariate candidate reported as multivariate")
	}
	empty := NewTuned(nil, Config{})
	if empty.Multivariate() {
		t.Fatal("empty grid reported as multivariate")
	}
}
