package tune

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"github.com/goetsc/goetsc/internal/core"
	"github.com/goetsc/goetsc/internal/sched"
	ts "github.com/goetsc/goetsc/internal/timeseries"
)

func stripScoreTimes(scores []Score) {
	for i := range scores {
		scores[i].Result.TrainTime = 0
		scores[i].Result.TestTime = 0
	}
}

func TestSelectDeterministicAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := offsetDataset(rng, 60, 20)
	candidates := []Candidate{
		{Label: "late", New: func() core.EarlyClassifier { return &stubAlgo{at: 20} }},
		{Label: "early", New: func() core.EarlyClassifier { return &stubAlgo{at: 4} }},
		{Label: "mid", New: func() core.EarlyClassifier { return &stubAlgo{at: 10} }},
		{Label: "broken", New: func() core.EarlyClassifier { return &stubAlgo{at: 4, bad: true} }},
	}
	sel := func(pool *sched.Pool) (Candidate, []Score) {
		best, scores, err := Select(candidates, d, Config{Seed: 5, Pool: pool})
		if err != nil {
			t.Fatal(err)
		}
		stripScoreTimes(scores)
		return best, scores
	}
	serialBest, serialScores := sel(nil)
	for _, workers := range []int{4, 8} {
		best, scores := sel(sched.New(workers))
		if best.Label != serialBest.Label {
			t.Fatalf("workers=%d selected %q, serial selected %q", workers, best.Label, serialBest.Label)
		}
		if !reflect.DeepEqual(scores, serialScores) {
			t.Fatalf("workers=%d scores differ:\n%+v\nvs\n%+v", workers, scores, serialScores)
		}
	}
}

type failingAlgo struct{ stubAlgo }

var errFit = errors.New("fit exploded")

func (f *failingAlgo) Fit(*ts.Dataset) error { return errFit }

func TestSelectParallelPropagatesError(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := offsetDataset(rng, 40, 20)
	candidates := []Candidate{
		{Label: "ok", New: func() core.EarlyClassifier { return &stubAlgo{at: 4} }},
		{Label: "boom", New: func() core.EarlyClassifier { return &failingAlgo{} }},
	}
	_, _, err := Select(candidates, d, Config{Seed: 6, Pool: sched.New(8)})
	if !errors.Is(err, errFit) {
		t.Fatalf("err = %v, want wrapped errFit", err)
	}
}
