package faults

import (
	"fmt"
	"sync"
	"time"
)

// Fleet-plane chaos. The fleet router exposes a per-replica hook
// (fleet.Config.ReplicaHook) that runs before every routed work
// request. FleetHook adapts a Plan to it — the n-th request routed to a
// replica draws the fault assigned to the (replica, n) key, so a chaos
// run with a fixed request sequence kills and delays the same replicas
// at the same points every time — plus an explicit kill schedule for
// tests that need a replica to die at one exact routed call.

// fleetInjector tracks per-replica routed-call numbers.
type fleetInjector struct {
	plan *Plan
	kill map[string]int

	mu    sync.Mutex
	calls map[string]int
	dead  map[string]bool
}

// FleetHook returns a replica fault hook. kill maps replica IDs to the
// routed-call number (0-based) at which the replica dies: every call
// from that number on returns an error, which the router treats exactly
// like a transport failure — mark the replica down and heal its
// sessions elsewhere. The plan (may be nil) layers seeded faults on
// top: Panic and Error at (replica, n) also read as a death, Latency
// sleeps in the routing path. A nil plan with an empty schedule returns
// nil — chaos off.
func (p *Plan) FleetHook(kill map[string]int) func(replicaID string) error {
	if p == nil && len(kill) == 0 {
		return nil
	}
	inj := &fleetInjector{plan: p, kill: kill, calls: map[string]int{}, dead: map[string]bool{}}
	return inj.hook
}

func (i *fleetInjector) hook(replica string) error {
	i.mu.Lock()
	n := i.calls[replica]
	i.calls[replica] = n + 1
	dead := i.dead[replica]
	if !dead {
		if at, ok := i.kill[replica]; ok && n >= at {
			i.dead[replica] = true
			dead = true
		}
	}
	i.mu.Unlock()
	if dead {
		return fmt.Errorf("faults: injected replica death at %s/call%d", replica, n)
	}
	if i.plan == nil {
		return nil
	}
	f := i.plan.For(replica, "route", 0, n)
	switch f.Kind {
	case Panic, Error:
		// Both read as the replica failing the request: the router has no
		// in-process frame to recover a panic from a remote backend, so a
		// planted panic means death, same as an error.
		i.mu.Lock()
		i.dead[replica] = true
		i.mu.Unlock()
		return fmt.Errorf("faults: injected replica failure at %s/call%d", replica, n)
	case Latency:
		time.Sleep(f.Delay)
	}
	return nil
}
