package faults

import (
	"testing"
	"time"
)

func TestFleetHookNilWhenChaosOff(t *testing.T) {
	var p *Plan
	if p.FleetHook(nil) != nil {
		t.Fatal("nil plan with empty schedule must return a nil hook")
	}
}

// TestFleetHookKillSchedule: the explicit schedule kills a replica at
// one exact routed call, the death is sticky, and unscheduled replicas
// never die.
func TestFleetHookKillSchedule(t *testing.T) {
	var p *Plan
	hook := p.FleetHook(map[string]int{"r1": 2})
	for i := 0; i < 5; i++ {
		if err := hook("r0"); err != nil {
			t.Fatalf("r0 call %d failed: %v", i, err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := hook("r1"); err != nil {
			t.Fatalf("r1 call %d died before its scheduled call: %v", i, err)
		}
	}
	for i := 2; i < 6; i++ {
		if err := hook("r1"); err == nil {
			t.Fatalf("r1 call %d survived past its death", i)
		}
	}
}

// TestFleetHookPlanDeterminism: the hook draws from the plan's seeded
// key space, so the first planted fault is a pure function of the plan
// — find it with For, then confirm two independent hooks die at exactly
// that call and stay dead (plan-injected failures are sticky).
func TestFleetHookPlanDeterminism(t *testing.T) {
	plan := NewPlan(Config{Seed: 7, ErrorProb: 0.4})
	first := -1
	for i := 0; i < 500; i++ {
		if k := plan.For("rX", "route", 0, i).Kind; k == Error || k == Panic {
			first = i
			break
		}
	}
	if first < 0 {
		t.Fatal("seed 7 at 40% error rate planted nothing in 500 calls")
	}
	for run := 0; run < 2; run++ {
		hook := plan.FleetHook(nil)
		for i := 0; i <= first+10; i++ {
			err := hook("rX")
			if i < first && err != nil {
				t.Fatalf("run %d: call %d died before the planted fault at %d: %v", run, i, first, err)
			}
			if i >= first && err == nil {
				t.Fatalf("run %d: call %d survived after the planted death at %d", run, i, first)
			}
		}
	}
}

// TestFleetHookLatency: latency faults delay the routing path without
// killing the replica.
func TestFleetHookLatency(t *testing.T) {
	plan := NewPlan(Config{Seed: 3, LatencyProb: 1, MaxLatency: time.Millisecond})
	hook := plan.FleetHook(nil)
	for i := 0; i < 5; i++ {
		if err := hook("r0"); err != nil {
			t.Fatalf("latency fault killed the replica at call %d: %v", i, err)
		}
	}
}
