package faults

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"github.com/goetsc/goetsc/internal/core"
	"github.com/goetsc/goetsc/internal/sched"
	ts "github.com/goetsc/goetsc/internal/timeseries"
)

// noop is a minimal classifier for wrapper tests.
type noop struct{ fitted bool }

func (n *noop) Name() string                       { return "NOOP" }
func (n *noop) Fit(train *ts.Dataset) error        { n.fitted = true; return nil }
func (n *noop) Classify(in ts.Instance) (int, int) { return 0, 1 }

// stoppableNoop additionally records Stop propagation.
type stoppableNoop struct {
	noop
	stopped bool
}

func (s *stoppableNoop) Stop() { s.stopped = true }

func TestPlanIsDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, PanicProb: 0.1, ErrorProb: 0.1, LatencyProb: 0.1, MaxLatency: time.Second}
	a, b := NewPlan(cfg), NewPlan(cfg)
	for fold := 0; fold < 50; fold++ {
		for attempt := 0; attempt < 3; attempt++ {
			fa := a.For("PowerCons", "ECTS", fold, attempt)
			fb := b.For("PowerCons", "ECTS", fold, attempt)
			if fa != fb {
				t.Fatalf("fold %d attempt %d: %v vs %v", fold, attempt, fa, fb)
			}
		}
	}
	// A different seed reshuffles the placement.
	c := NewPlan(Config{Seed: 8, PanicProb: 0.1, ErrorProb: 0.1, LatencyProb: 0.1, MaxLatency: time.Second})
	same := 0
	for fold := 0; fold < 200; fold++ {
		if a.For("PowerCons", "ECTS", fold, 0) == c.For("PowerCons", "ECTS", fold, 0) {
			same++
		}
	}
	if same == 200 {
		t.Fatal("seed change did not move any fault")
	}
}

func TestPlanRatesApproximateConfig(t *testing.T) {
	p := NewPlan(Config{Seed: 1, PanicProb: 0.2, ErrorProb: 0.3, LatencyProb: 0.1, MaxLatency: time.Second})
	counts := map[Kind]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[p.For("ds", "algo", i, 0).Kind]++
	}
	check := func(kind Kind, want float64) {
		got := float64(counts[kind]) / n
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("%v rate = %.3f, want ~%.2f", kind, got, want)
		}
	}
	check(Panic, 0.2)
	check(Error, 0.3)
	check(Latency, 0.1)
	check(None, 0.4)
}

func TestNilPlanInjectsNothing(t *testing.T) {
	var p *Plan
	if f := p.For("ds", "algo", 0, 0); f.Kind != None {
		t.Fatalf("nil plan fault = %v", f)
	}
	inner := &noop{}
	wrapped := p.Wrapper()("ds", "algo", 0, 0, func() core.EarlyClassifier { return inner })()
	if wrapped != core.EarlyClassifier(inner) {
		t.Fatal("nil plan should return the factory's classifier untouched")
	}
}

func TestWrapAppliesFaults(t *testing.T) {
	factory := func() core.EarlyClassifier { return &noop{} }

	err := sched.Protect(func() error {
		return Wrap(factory, Fault{Kind: Panic}, "k")().Fit(nil)
	})
	var pe *sched.PanicError
	if !errors.As(err, &pe) || !strings.Contains(pe.Error(), "injected panic at k") {
		t.Fatalf("panic fault: %v", err)
	}

	if err := Wrap(factory, Fault{Kind: Error}, "k")().Fit(nil); err == nil ||
		!strings.Contains(err.Error(), "injected error at k") {
		t.Fatalf("error fault: %v", err)
	}

	start := time.Now()
	c := Wrap(factory, Fault{Kind: Latency, Delay: 30 * time.Millisecond}, "k")()
	if err := c.Fit(&ts.Dataset{Name: "d"}); err != nil {
		t.Fatalf("latency fault: %v", err)
	}
	if time.Since(start) < 30*time.Millisecond {
		t.Fatal("latency fault did not delay Fit")
	}
	if label, consumed := c.Classify(ts.Instance{}); label != 0 || consumed != 1 {
		t.Fatalf("Classify not delegated: %d, %d", label, consumed)
	}
}

func TestWrapDelegatesCapabilities(t *testing.T) {
	s := &stoppableNoop{}
	wrapped := Wrap(func() core.EarlyClassifier { return s }, Fault{Kind: Latency}, "k")()
	if wrapped.Name() != "NOOP" {
		t.Fatalf("Name = %q", wrapped.Name())
	}
	if core.IsMultivariate(wrapped) {
		t.Fatal("univariate inner reported as multivariate")
	}
	wrapped.(core.Stoppable).Stop()
	if !s.stopped {
		t.Fatal("Stop not propagated")
	}
}
