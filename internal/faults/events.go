package faults

import (
	"fmt"
	"hash/fnv"

	"github.com/goetsc/goetsc/internal/ingest"
)

// Event-stream fault schedules: the same seeded-hash discipline the
// training plan uses, applied to an entity event stream. The decision
// for one event is a pure function of (seed, entity, t), never of
// stream position, so a plan places the same drops, duplicates and
// delays in the same places however the stream is produced — which lets
// chaos tests assert exact post-fault pipeline counters.

// EventKind enumerates the injectable stream faults.
type EventKind int

// Event fault kinds.
const (
	// EventNone delivers the event untouched.
	EventNone EventKind = iota
	// EventDrop loses the event, as a flaky transceiver would.
	EventDrop
	// EventDup delivers the event twice back to back — the at-least-once
	// delivery case the pipeline's staleness check must absorb.
	EventDup
	// EventLate holds the event back and re-delivers it after LateBy
	// later events, by which time its entity has moved on and the
	// pipeline must reject it as stale.
	EventLate
)

// String names the kind for journals and test output.
func (k EventKind) String() string {
	switch k {
	case EventDrop:
		return "drop"
	case EventDup:
		return "dup"
	case EventLate:
		return "late"
	default:
		return "none"
	}
}

// EventConfig sets the stream plan's seed and per-event probabilities,
// partitioning [0, 1) the way the training Config does.
type EventConfig struct {
	Seed     int64
	DropProb float64
	DupProb  float64
	LateProb float64
	// LateBy is how many subsequent events a Late event is held behind.
	// Default 8.
	LateBy int
}

// EventPlan deterministically maps events to stream faults.
type EventPlan struct {
	cfg EventConfig
}

// NewEventPlan builds a stream plan from the config.
func NewEventPlan(cfg EventConfig) *EventPlan {
	if cfg.LateBy <= 0 {
		cfg.LateBy = 8
	}
	return &EventPlan{cfg: cfg}
}

// For returns the fault assigned to one (entity, t) event. A nil plan
// injects nothing.
func (p *EventPlan) For(entity string, t int) EventKind {
	if p == nil {
		return EventNone
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|event|%s|%d", p.cfg.Seed, entity, t)
	// Event keys are short and near-identical, which leaves FNV's upper
	// bits visibly non-uniform; a finalizer mix (murmur3's) fixes the
	// distribution without giving up determinism.
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	u := float64(x>>11) / float64(uint64(1)<<53)
	switch {
	case u < p.cfg.DropProb:
		return EventDrop
	case u < p.cfg.DropProb+p.cfg.DupProb:
		return EventDup
	case u < p.cfg.DropProb+p.cfg.DupProb+p.cfg.LateProb:
		return EventLate
	default:
		return EventNone
	}
}

// Apply materializes the plan over a stream: dropped events vanish,
// duplicated events appear twice in a row, late events are re-inserted
// LateBy delivered events downstream (or at the end of the stream).
// The input is not modified; the output is deterministic in the input.
func (p *EventPlan) Apply(events []ingest.Event) []ingest.Event {
	if p == nil {
		return events
	}
	out := make([]ingest.Event, 0, len(events))
	type held struct {
		ev  ingest.Event
		due int // deliver once len(out) reaches this
	}
	var pending []held
	flushDue := func() {
		for len(pending) > 0 && pending[0].due <= len(out) {
			out = append(out, pending[0].ev)
			pending = pending[1:]
		}
	}
	for _, ev := range events {
		flushDue()
		switch p.For(ev.Entity, ev.T) {
		case EventDrop:
		case EventDup:
			out = append(out, ev, ev)
		case EventLate:
			pending = append(pending, held{ev: ev, due: len(out) + p.cfg.LateBy})
		default:
			out = append(out, ev)
		}
	}
	for _, h := range pending {
		out = append(out, h.ev)
	}
	return out
}
