package faults

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"github.com/goetsc/goetsc/internal/ingest"
)

func eventStream(entities, length int) []ingest.Event {
	var out []ingest.Event
	for t := 0; t < length; t++ {
		for e := 0; e < entities; e++ {
			out = append(out, ingest.Event{
				Entity: fmt.Sprintf("e-%d", e), T: t, Values: []float64{float64(t)},
			})
		}
	}
	return out
}

// TestEventPlanDeterministic: the fault for an event is a pure function
// of (seed, entity, t) — independent of stream position — so two
// applications of one plan, and For called in any order, agree exactly.
func TestEventPlanDeterministic(t *testing.T) {
	plan := NewEventPlan(EventConfig{Seed: 7, DropProb: 0.1, DupProb: 0.1, LateProb: 0.1})
	stream := eventStream(10, 30)
	a := plan.Apply(stream)
	b := plan.Apply(stream)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same plan over same stream produced different outputs")
	}
	for _, ev := range stream {
		if plan.For(ev.Entity, ev.T) != plan.For(ev.Entity, ev.T) {
			t.Fatal("For is not stable")
		}
	}
	other := NewEventPlan(EventConfig{Seed: 8, DropProb: 0.1, DupProb: 0.1, LateProb: 0.1})
	diff := 0
	for _, ev := range stream {
		if plan.For(ev.Entity, ev.T) != other.For(ev.Entity, ev.T) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical schedules")
	}
}

// TestEventPlanKindDistribution: each kind lands within a loose band of
// its configured probability over a large key space.
func TestEventPlanKindDistribution(t *testing.T) {
	cfg := EventConfig{Seed: 3, DropProb: 0.1, DupProb: 0.2, LateProb: 0.1}
	plan := NewEventPlan(cfg)
	counts := map[EventKind]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[plan.For(fmt.Sprintf("entity-%d", i%500), i/500)]++
	}
	for kind, want := range map[EventKind]float64{
		EventDrop: cfg.DropProb, EventDup: cfg.DupProb, EventLate: cfg.LateProb,
		EventNone: 1 - cfg.DropProb - cfg.DupProb - cfg.LateProb,
	} {
		got := float64(counts[kind]) / n
		if got < want-0.02 || got > want+0.02 {
			t.Errorf("%v rate = %.3f, want %.2f ± 0.02", kind, got, want)
		}
	}
}

// TestEventPlanApplySemantics checks the three materializations: a drop
// vanishes, a dup appears twice back to back, a late event is delivered
// LateBy events downstream — and nothing else moves.
func TestEventPlanApplySemantics(t *testing.T) {
	stream := eventStream(6, 20)

	if out := (*EventPlan)(nil).Apply(stream); !reflect.DeepEqual(out, stream) {
		t.Error("nil plan modified the stream")
	}
	if out := NewEventPlan(EventConfig{Seed: 1}).Apply(stream); !reflect.DeepEqual(out, stream) {
		t.Error("zero-probability plan modified the stream")
	}
	if out := NewEventPlan(EventConfig{Seed: 1, DropProb: 1}).Apply(stream); len(out) != 0 {
		t.Errorf("drop-everything plan delivered %d events", len(out))
	}
	if out := NewEventPlan(EventConfig{Seed: 1, DupProb: 1}).Apply(stream); len(out) != 2*len(stream) {
		t.Errorf("dup-everything plan delivered %d events, want %d", len(out), 2*len(stream))
	}

	// A mixed plan conserves events: output = input − drops + dups, and
	// the multiset of non-dropped events is preserved.
	plan := NewEventPlan(EventConfig{Seed: 11, DropProb: 0.1, DupProb: 0.1, LateProb: 0.2, LateBy: 5})
	out := plan.Apply(stream)
	drops, dups := 0, 0
	var kept []ingest.Event
	for _, ev := range stream {
		switch plan.For(ev.Entity, ev.T) {
		case EventDrop:
			drops++
		case EventDup:
			dups++
			kept = append(kept, ev, ev)
		default:
			kept = append(kept, ev)
		}
	}
	if len(out) != len(stream)-drops+dups {
		t.Errorf("delivered %d events, want %d − %d drops + %d dups", len(out), len(stream), drops, dups)
	}
	key := func(ev ingest.Event) string { return fmt.Sprintf("%s@%d", ev.Entity, ev.T) }
	gotKeys := make([]string, len(out))
	for i, ev := range out {
		gotKeys[i] = key(ev)
	}
	wantKeys := make([]string, len(kept))
	for i, ev := range kept {
		wantKeys[i] = key(ev)
	}
	sort.Strings(gotKeys)
	sort.Strings(wantKeys)
	if !reflect.DeepEqual(gotKeys, wantKeys) {
		t.Error("delivered multiset differs from planned keeps+dups")
	}
}

// TestEventPlanLateDisplacement: with LateProb 1 every event is held
// back; the stream drains in order once nothing else can come first.
func TestEventPlanLateDisplacement(t *testing.T) {
	stream := eventStream(2, 3)
	plan := NewEventPlan(EventConfig{Seed: 1, LateProb: 1, LateBy: 2})
	out := plan.Apply(stream)
	if len(out) != len(stream) {
		t.Fatalf("late-only plan delivered %d events, want %d", len(out), len(stream))
	}
	// Every event must appear at or after its original position.
	pos := map[string]int{}
	for i, ev := range stream {
		pos[fmt.Sprintf("%s@%d", ev.Entity, ev.T)] = i
	}
	for i, ev := range out {
		if orig := pos[fmt.Sprintf("%s@%d", ev.Entity, ev.T)]; i < orig {
			t.Errorf("event %s@%d moved earlier (%d → %d)", ev.Entity, ev.T, orig, i)
		}
	}
}
