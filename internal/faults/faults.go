// Package faults is the deterministic fault-injection harness behind
// the chaos test suite: a seeded Plan decides, purely as a function of
// the (dataset, algorithm, fold, attempt) key, whether that work unit
// panics, errors, or suffers a latency spike during training. Because
// the decision is a hash of the key — not of scheduling order — the same
// plan places the same faults at the same cells at any worker count, so
// chaos runs can assert that surviving cells are byte-identical to a
// fault-free run and that retries at later attempt numbers recover.
//
// The package is stdlib-only and wraps algorithm factories in tests
// only; production configurations never reference it.
package faults

import (
	"fmt"
	"hash/fnv"
	"time"

	"github.com/goetsc/goetsc/internal/core"
	ts "github.com/goetsc/goetsc/internal/timeseries"
)

// Kind enumerates the injectable fault types.
type Kind int

// Fault kinds.
const (
	// None leaves the work unit untouched.
	None Kind = iota
	// Panic makes Fit panic, exercising the engine's recover isolation.
	Panic
	// Error makes Fit return an error, exercising retry and DNF paths.
	Error
	// Latency delays Fit by Fault.Delay before training normally,
	// exercising budget interplay without failing the unit.
	Latency
)

// String names the kind for journals and error messages.
func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Error:
		return "error"
	case Latency:
		return "latency"
	default:
		return "none"
	}
}

// Fault is one injection decision.
type Fault struct {
	Kind Kind
	// Delay is the injected training delay (Latency faults only).
	Delay time.Duration
}

// Config sets the plan seed and per-key injection probabilities. The
// probabilities partition [0, 1): a key draws one uniform value and
// receives a panic when it lands below PanicProb, an error below
// PanicProb+ErrorProb, a latency spike below the three-way sum, and no
// fault otherwise.
type Config struct {
	Seed        int64
	PanicProb   float64
	ErrorProb   float64
	LatencyProb float64
	// MaxLatency bounds injected delays; Latency faults draw uniformly
	// from (0, MaxLatency]. Zero disables delay (the fault still fires,
	// with Delay 0).
	MaxLatency time.Duration
}

// Plan deterministically maps work-unit keys to faults.
type Plan struct {
	cfg Config
}

// NewPlan builds a plan from the config.
func NewPlan(cfg Config) *Plan { return &Plan{cfg: cfg} }

// uniform hashes the key (plus a purpose tag, so the kind draw and the
// delay draw are independent) into a uniform float64 in [0, 1).
func (p *Plan) uniform(tag, dataset, algorithm string, fold, attempt int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%s|%d|%d", p.cfg.Seed, tag, dataset, algorithm, fold, attempt)
	return float64(h.Sum64()>>11) / float64(uint64(1)<<53)
}

// For returns the fault assigned to one (dataset, algorithm, fold,
// attempt) key. A nil plan injects nothing.
func (p *Plan) For(dataset, algorithm string, fold, attempt int) Fault {
	if p == nil {
		return Fault{}
	}
	u := p.uniform("kind", dataset, algorithm, fold, attempt)
	switch {
	case u < p.cfg.PanicProb:
		return Fault{Kind: Panic}
	case u < p.cfg.PanicProb+p.cfg.ErrorProb:
		return Fault{Kind: Error}
	case u < p.cfg.PanicProb+p.cfg.ErrorProb+p.cfg.LatencyProb:
		d := time.Duration(p.uniform("delay", dataset, algorithm, fold, attempt) *
			float64(p.cfg.MaxLatency))
		return Fault{Kind: Latency, Delay: d}
	default:
		return Fault{}
	}
}

// Wrapper adapts the plan to the evaluation engine's fold-factory hook
// (bench.RunConfig.WrapFoldFactory): each fold's factory is replaced by
// one that applies the fault assigned to its full key. A nil plan
// returns a pass-through wrapper.
func (p *Plan) Wrapper() func(dataset, algorithm string, attempt, fold int, f core.Factory) core.Factory {
	return func(dataset, algorithm string, attempt, fold int, f core.Factory) core.Factory {
		fault := p.For(dataset, algorithm, fold, attempt)
		if fault.Kind == None {
			return f
		}
		key := fmt.Sprintf("%s/%s/fold%d/attempt%d", dataset, algorithm, fold, attempt)
		return Wrap(f, fault, key)
	}
}

// Wrap returns a factory whose classifiers apply the fault when Fit is
// called, then (for Latency, or None) behave exactly as the inner
// classifier. Multivariate capability and Stop propagation are
// delegated, so wrapping never changes how the harness treats the
// algorithm.
func Wrap(f core.Factory, fault Fault, key string) core.Factory {
	return func() core.EarlyClassifier {
		return &faulty{inner: f(), fault: fault, key: key}
	}
}

type faulty struct {
	inner core.EarlyClassifier
	fault Fault
	key   string
}

func (c *faulty) Name() string { return c.inner.Name() }

func (c *faulty) Multivariate() bool { return core.IsMultivariate(c.inner) }

// Stop propagates to the inner classifier when it is Stoppable.
func (c *faulty) Stop() {
	if s, ok := c.inner.(core.Stoppable); ok {
		s.Stop()
	}
}

func (c *faulty) Fit(train *ts.Dataset) error {
	switch c.fault.Kind {
	case Panic:
		panic(fmt.Sprintf("faults: injected panic at %s", c.key))
	case Error:
		return fmt.Errorf("faults: injected error at %s", c.key)
	case Latency:
		time.Sleep(c.fault.Delay)
	}
	return c.inner.Fit(train)
}

func (c *faulty) Classify(in ts.Instance) (int, int) { return c.inner.Classify(in) }
