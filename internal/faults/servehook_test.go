package faults

import (
	"bytes"
	"encoding/gob"
	"errors"
	"testing"
	"time"

	"github.com/goetsc/goetsc/internal/persist"
	ts "github.com/goetsc/goetsc/internal/timeseries"
)

// outcome classifies what one hook call did, mirroring Kind.
func outcome(hook func(string) error, model string) (k Kind) {
	defer func() {
		if recover() != nil {
			k = Panic
		}
	}()
	if err := hook(model); err != nil {
		return Error
	}
	return None // Latency sleeps then succeeds; callers observe no fault
}

// TestServeHookDeterministicPerModel pins the classify-hook contract:
// the n-th call for a model draws Plan.For(model, "classify", 0, n), so
// two injectors built from the same plan see identical fault sequences,
// and each model's call numbering is independent of interleaving.
func TestServeHookDeterministicPerModel(t *testing.T) {
	plan := NewPlan(Config{Seed: 11, PanicProb: 0.2, ErrorProb: 0.3, LatencyProb: 0.2,
		MaxLatency: time.Microsecond})

	want := func(model string, n int) Kind {
		k := plan.For(model, "classify", 0, n).Kind
		if k == Latency {
			k = None // latency delays but does not fail the call
		}
		return k
	}

	hookA, hookB := plan.ServeHook(), plan.ServeHook()
	// Interleave two models on hookA; counters must not cross-talk.
	for n := 0; n < 64; n++ {
		for _, model := range []string{"m1", "m2"} {
			if got := outcome(hookA, model); got != want(model, n) {
				t.Fatalf("hookA %s call %d = %v, want %v", model, n, got, want(model, n))
			}
		}
	}
	// A second injector from the same plan replays the same sequence.
	for n := 0; n < 64; n++ {
		if got := outcome(hookB, "m1"); got != want("m1", n) {
			t.Fatalf("hookB m1 call %d = %v, want %v", n, got, want("m1", n))
		}
	}
}

func TestServeHookNilPlan(t *testing.T) {
	var p *Plan
	if hook := p.ServeHook(); hook != nil {
		t.Fatal("nil plan must yield a nil hook (chaos off)")
	}
}

// persistStub is a minimal gob-encodable classifier so the corruption
// tests can build a real persist envelope without training anything.
type persistStub struct{ K int }

func (s *persistStub) Name() string                    { return "STUB" }
func (s *persistStub) Fit(*ts.Dataset) error           { return nil }
func (s *persistStub) Classify(ts.Instance) (int, int) { return s.K, 1 }

// TestCorruptMapsToPersistTaxonomy proves each Corruption mode lands on
// its promised typed persist error — the mapping the reload API's
// failure taxonomy (and its chaos tests) relies on — and that the
// damage is deterministic and leaves the input untouched.
func TestCorruptMapsToPersistTaxonomy(t *testing.T) {
	gob.Register(&persistStub{})
	var env bytes.Buffer
	if err := persist.Save(&env, &persistStub{K: 3}, persist.Meta{Dataset: "synthetic"}); err != nil {
		t.Fatalf("save stub envelope: %v", err)
	}

	cases := []struct {
		mode Corruption
		want error
	}{
		{WrongMagic, persist.ErrBadMagic},
		{FutureVersion, persist.ErrVersion},
		{Truncate, persist.ErrTruncated},
		{FlipBit, persist.ErrChecksum},
	}
	for _, tc := range cases {
		before := append([]byte(nil), env.Bytes()...)
		bad := Corrupt(env.Bytes(), tc.mode)
		if !bytes.Equal(env.Bytes(), before) {
			t.Fatalf("mode %d mutated its input", tc.mode)
		}
		if again := Corrupt(env.Bytes(), tc.mode); !bytes.Equal(bad, again) {
			t.Fatalf("mode %d is not deterministic", tc.mode)
		}
		if _, _, err := persist.Load(bytes.NewReader(bad)); !errors.Is(err, tc.want) {
			t.Fatalf("mode %d: Load = %v, want %v", tc.mode, err, tc.want)
		}
	}

	// The undamaged envelope still loads — the baseline the modes damage.
	model, _, err := persist.Load(bytes.NewReader(env.Bytes()))
	if err != nil {
		t.Fatalf("pristine envelope failed to load: %v", err)
	}
	if label, _ := model.Classify(ts.Instance{Values: [][]float64{{0}}}); label != 3 {
		t.Fatalf("round-tripped stub answers %d, want 3", label)
	}
}
