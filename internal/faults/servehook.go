package faults

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"
)

// Serving-plane chaos. The evaluation engine injects faults by wrapping
// fold factories; the serving layer instead exposes a classify hook
// (serve.Config.ClassifyHook) that runs before every classify/advance.
// ServeHook adapts a Plan to that hook: the n-th classify call against a
// model draws the fault assigned to the (model, n) key, so a chaos run
// that drives a model with a fixed request sequence sees the same
// panics, errors and latency spikes every time, at any -race schedule.

// serveInjector tracks per-model call numbers for a plan-driven hook.
type serveInjector struct {
	plan *Plan

	mu    sync.Mutex
	calls map[string]int
}

// ServeHook returns a classify-path fault hook driven by the plan. Each
// model's calls are numbered independently; the fault for call n is
// Plan.For(model, "classify", 0, n). A nil plan returns nil — the
// serving layer treats a nil hook as chaos off.
func (p *Plan) ServeHook() func(model string) error {
	if p == nil {
		return nil
	}
	inj := &serveInjector{plan: p, calls: map[string]int{}}
	return inj.hook
}

func (i *serveInjector) hook(model string) error {
	i.mu.Lock()
	n := i.calls[model]
	i.calls[model] = n + 1
	i.mu.Unlock()
	f := i.plan.For(model, "classify", 0, n)
	switch f.Kind {
	case Panic:
		panic(fmt.Sprintf("faults: injected classify panic at %s/call%d", model, n))
	case Error:
		return fmt.Errorf("faults: injected classify error at %s/call%d", model, n)
	case Latency:
		time.Sleep(f.Delay)
	}
	return nil
}

// Corruption enumerates ways to damage a persisted model artifact for
// corrupt-reload chaos. Each maps to a distinct typed persist error, so
// the chaos suite can prove the reload API's whole failure taxonomy.
type Corruption int

// Corruption modes.
const (
	// WrongMagic overwrites the magic header (persist.ErrBadMagic).
	WrongMagic Corruption = iota
	// FutureVersion bumps the format version (persist.ErrVersion).
	FutureVersion
	// Truncate cuts the file mid-payload (persist.ErrTruncated).
	Truncate
	// FlipBit flips one payload bit (persist.ErrChecksum).
	FlipBit
)

// Corrupt returns a damaged copy of a persist envelope; data itself is
// never modified. The damage is deterministic — no randomness — so a
// corrupt-reload chaos run is reproducible byte for byte.
func Corrupt(data []byte, c Corruption) []byte {
	out := append([]byte(nil), data...)
	switch c {
	case WrongMagic:
		copy(out, "NOTMODEL")
	case FutureVersion:
		// The u32 format version sits right after the 8-byte magic.
		if len(out) >= 12 {
			binary.BigEndian.PutUint32(out[8:], binary.BigEndian.Uint32(out[8:])+1)
		}
	case Truncate:
		out = out[:len(out)/2]
	case FlipBit:
		// Flip a bit in the middle: lands in the gob payload for any real
		// model, far from the length-prefixed structure.
		out[len(out)/2] ^= 0x01
	}
	return out
}
