package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func randSlice(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

// naiveSqDist is the reference loop every kernel must reproduce bit for
// bit: strict index-order accumulation.
func naiveSqDist(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var sum float64
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

func TestSqDistMatchesNaiveBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 100, 1000} {
		a, b := randSlice(rng, n), randSlice(rng, n)
		if got, want := SqDist(a, b), naiveSqDist(a, b); got != want {
			t.Fatalf("n=%d: SqDist=%v naive=%v", n, got, want)
		}
		// Mismatched lengths clamp to the shorter operand.
		if n > 2 {
			if got, want := SqDist(a[:n-2], b), naiveSqDist(a[:n-2], b); got != want {
				t.Fatalf("n=%d short a: SqDist=%v naive=%v", n, got, want)
			}
		}
	}
}

func TestSqDistBoundedExactBelowBound(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		a, b := randSlice(rng, n), randSlice(rng, n)
		want := naiveSqDist(a, b)
		// A bound above the true distance must never fire: exact result.
		if got := SqDistBounded(a, b, want+1); got != want {
			t.Fatalf("trial %d: SqDistBounded=%v want %v", trial, got, want)
		}
		// A bound at or below the true distance abandons with a partial
		// sum that is itself >= bound (unless the loop ran out first).
		if got := SqDistBounded(a, b, want/2); got < want/2 && got != want {
			t.Fatalf("trial %d: abandoned sum %v below bound %v", trial, got, want/2)
		}
	}
}

func TestSumSqAndAxpy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randSlice(rng, 129)
	var want float64
	for _, v := range a {
		want += v * v
	}
	if got := SumSq(a); got != want {
		t.Fatalf("SumSq=%v want %v", got, want)
	}

	x, y := randSlice(rng, 64), randSlice(rng, 64)
	wantY := append([]float64(nil), y...)
	for i := range wantY {
		wantY[i] += 0.25 * x[i]
	}
	Axpy(0.25, x, y)
	for i := range y {
		if y[i] != wantY[i] {
			t.Fatalf("Axpy[%d]=%v want %v", i, y[i], wantY[i])
		}
	}
	// Axpy matches the existing AddScaled update bit for bit on equal
	// lengths.
	y2 := append([]float64(nil), wantY...)
	y3 := append([]float64(nil), wantY...)
	Axpy(-1.5, x, y2)
	AddScaled(y3, -1.5, x)
	for i := range y2 {
		if y2[i] != y3[i] {
			t.Fatalf("Axpy vs AddScaled at %d: %v vs %v", i, y2[i], y3[i])
		}
	}
}

func TestFloat32KernelsMatchFloat32Naive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{0, 1, 5, 8, 33, 257} {
		a64, b64 := randSlice(rng, n), randSlice(rng, n)
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a64 {
			a[i], b[i] = float32(a64[i]), float32(b64[i])
		}
		var dot, sq float32
		for i := 0; i < n; i++ {
			dot += a[i] * b[i]
			d := a[i] - b[i]
			sq += d * d
		}
		if got := DotF32(a, b); got != dot {
			t.Fatalf("n=%d: DotF32=%v want %v", n, got, dot)
		}
		if got := SqDistF32(a, b); got != sq {
			t.Fatalf("n=%d: SqDistF32=%v want %v", n, got, sq)
		}
		if got := SqDistBoundedF32(a, b, math.MaxFloat32); got != sq {
			t.Fatalf("n=%d: SqDistBoundedF32=%v want %v", n, got, sq)
		}
	}
}

func BenchmarkSqDist(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	x, y := randSlice(rng, 400), randSlice(rng, 400)
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += SqDist(x, y)
	}
	_ = sink
}

func BenchmarkSqDistF32(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	x64, y64 := randSlice(rng, 400), randSlice(rng, 400)
	x := make([]float32, len(x64))
	y := make([]float32, len(y64))
	for i := range x64 {
		x[i], y[i] = float32(x64[i]), float32(y64[i])
	}
	b.ReportAllocs()
	var sink float32
	for i := 0; i < b.N; i++ {
		sink += SqDistF32(x, y)
	}
	_ = sink
}
