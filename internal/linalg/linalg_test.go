package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestMatrixAccessors(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("At/Set mismatch")
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 5 {
		t.Fatalf("Row = %v", row)
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	y := m.MulVec([]float64{1, 1, 1}, nil)
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v", y)
	}
	yt := m.MulVecT([]float64{1, 1}, nil)
	if yt[0] != 5 || yt[1] != 7 || yt[2] != 9 {
		t.Fatalf("MulVecT = %v", yt)
	}
}

func TestGram(t *testing.T) {
	m := NewMatrix(2, 2)
	copy(m.Data, []float64{1, 2, 3, 4})
	g := m.Gram()
	// [[1,2],[3,4]] * [[1,3],[2,4]] = [[5,11],[11,25]]
	if g.At(0, 0) != 5 || g.At(0, 1) != 11 || g.At(1, 1) != 25 {
		t.Fatalf("Gram = %v", g.Data)
	}
	if g.At(1, 0) != g.At(0, 1) {
		t.Fatal("Gram not symmetric")
	}
}

func TestCholeskySolveKnownSystem(t *testing.T) {
	// A = [[4,2],[2,3]], b = [10, 8] => x = [1.75, 1.5]
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{4, 2, 2, 3})
	x, err := SolveSPD(a, []float64{10, 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1.75) > 1e-10 || math.Abs(x[1]-1.5) > 1e-10 {
		t.Fatalf("x = %v", x)
	}
}

func TestCholeskyRejectsNonPD(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if err := Cholesky(a); err == nil {
		t.Fatal("non-PD matrix factored")
	}
	r := NewMatrix(2, 3)
	if err := Cholesky(r); err == nil {
		t.Fatal("rectangular matrix factored")
	}
}

func TestSolveSPDRandomSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(8)
		// Build SPD matrix A = B Bᵀ + I.
		b := NewMatrix(n, n)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		a := b.Gram()
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+1)
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		rhs := a.MulVec(xTrue, nil)
		x, err := SolveSPD(a, rhs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-6 {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, x[i], xTrue[i])
			}
		}
	}
}

func TestConjugateGradientMatchesDirectSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 12
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := b.Gram()
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+1)
	}
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	rhs := a.MulVec(xTrue, nil)
	op := func(x, y []float64) []float64 { return a.MulVec(x, y) }
	x := ConjugateGradient(op, rhs, 1e-10, 1000)
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-5 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], xTrue[i])
		}
	}
}

func TestConjugateGradientZeroRHS(t *testing.T) {
	op := func(x, y []float64) []float64 {
		copy(y, x)
		return y
	}
	x := ConjugateGradient(op, []float64{0, 0, 0}, 1e-8, 10)
	for _, v := range x {
		if v != 0 {
			t.Fatalf("x = %v, want zeros", x)
		}
	}
}

func TestVectorHelpers(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot wrong")
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Fatal("Norm2 wrong")
	}
	dst := []float64{1, 1}
	AddScaled(dst, 2, []float64{1, 2})
	if dst[0] != 3 || dst[1] != 5 {
		t.Fatalf("AddScaled = %v", dst)
	}
}
