// Package linalg provides the dense linear-algebra kernels needed by the
// classifier substrates: a row-major matrix type, Cholesky factorization for
// small symmetric positive-definite solves (dual ridge regression) and a
// conjugate-gradient solver for large sparse-free primal systems.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len = Rows*Cols
}

// NewMatrix allocates a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a slice aliasing row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// MulVec computes y = M x. x must have length Cols; the result has length
// Rows (allocated when y is nil).
func (m *Matrix) MulVec(x, y []float64) []float64 {
	if y == nil {
		y = make([]float64, m.Rows)
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var sum float64
		for j, v := range row {
			sum += v * x[j]
		}
		y[i] = sum
	}
	return y
}

// MulVecT computes y = Mᵀ x. x must have length Rows; the result has length
// Cols (allocated when y is nil).
func (m *Matrix) MulVecT(x, y []float64) []float64 {
	if y == nil {
		y = make([]float64, m.Cols)
	} else {
		for j := range y {
			y[j] = 0
		}
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, v := range row {
			y[j] += v * xi
		}
	}
	return y
}

// Gram computes G = M Mᵀ (Rows × Rows), the kernel matrix used by the dual
// ridge solver.
func (m *Matrix) Gram() *Matrix {
	g := NewMatrix(m.Rows, m.Rows)
	for i := 0; i < m.Rows; i++ {
		ri := m.Row(i)
		for j := i; j < m.Rows; j++ {
			rj := m.Row(j)
			var sum float64
			for k := range ri {
				sum += ri[k] * rj[k]
			}
			g.Set(i, j, sum)
			g.Set(j, i, sum)
		}
	}
	return g
}

// Dot returns the inner product of equal-length vectors.
func Dot(a, b []float64) float64 {
	var sum float64
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// AddScaled computes dst += alpha * src in place.
func AddScaled(dst []float64, alpha float64, src []float64) {
	for i := range dst {
		dst[i] += alpha * src[i]
	}
}

// Cholesky factors the symmetric positive-definite matrix A in place into
// L Lᵀ, storing L in the lower triangle. It returns an error when A is not
// positive definite (within jitter tolerance).
func Cholesky(a *Matrix) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("cholesky: matrix is %dx%d, want square", a.Rows, a.Cols)
	}
	n := a.Rows
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			l := a.At(j, k)
			d -= l * l
		}
		if d <= 0 {
			return fmt.Errorf("cholesky: matrix not positive definite at pivot %d (d=%g)", j, d)
		}
		d = math.Sqrt(d)
		a.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= a.At(i, k) * a.At(j, k)
			}
			a.Set(i, j, s/d)
		}
	}
	return nil
}

// CholeskySolve solves A x = b given the Cholesky factor produced by
// Cholesky (stored in the lower triangle of l). b is not modified.
func CholeskySolve(l *Matrix, b []float64) []float64 {
	n := l.Rows
	// Forward substitution: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back substitution: Lᵀ x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// SolveSPD solves A x = b for a symmetric positive-definite A, adding a
// small diagonal jitter and retrying when the factorization fails due to
// near-singularity. A is modified in place.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	jitter := 0.0
	for attempt := 0; attempt < 6; attempt++ {
		work := &Matrix{Rows: a.Rows, Cols: a.Cols, Data: append([]float64(nil), a.Data...)}
		if jitter > 0 {
			for i := 0; i < work.Rows; i++ {
				work.Set(i, i, work.At(i, i)+jitter)
			}
		}
		if err := Cholesky(work); err == nil {
			return CholeskySolve(work, b), nil
		}
		if jitter == 0 {
			jitter = 1e-8
		} else {
			jitter *= 100
		}
	}
	return nil, fmt.Errorf("solve spd: matrix remained non-positive-definite after jitter")
}

// MulVecFunc abstracts a linear operator for the conjugate-gradient solver,
// so that normal-equation products AᵀA x can be computed without forming
// the (possibly huge) matrix.
type MulVecFunc func(x, y []float64) []float64

// ConjugateGradient solves the symmetric positive-definite system
// op(x) = b iteratively. It stops when the residual norm falls below
// tol*||b|| or after maxIter iterations, returning the iterate either way.
func ConjugateGradient(op MulVecFunc, b []float64, tol float64, maxIter int) []float64 {
	n := len(b)
	x := make([]float64, n)
	r := append([]float64(nil), b...) // r = b - op(0) = b
	p := append([]float64(nil), b...)
	ap := make([]float64, n)
	rs := Dot(r, r)
	bNorm := Norm2(b)
	if bNorm == 0 {
		return x
	}
	for iter := 0; iter < maxIter; iter++ {
		if math.Sqrt(rs) <= tol*bNorm {
			break
		}
		op(p, ap)
		pap := Dot(p, ap)
		if pap <= 0 {
			break // operator not PD along p; bail with current iterate
		}
		alpha := rs / pap
		AddScaled(x, alpha, p)
		AddScaled(r, -alpha, ap)
		rsNew := Dot(r, r)
		beta := rsNew / rs
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rs = rsNew
	}
	return x
}
