package linalg

// Flat inner-loop kernels shared by the distance and convolution hot
// paths. Every loop is shaped for bounds-check elimination: both operands
// are re-sliced to one common length up front so the compiler can prove
// the per-element accesses in range, and accumulation stays in strict
// index order so results are bit-identical to the textbook loops they
// replace. The float32 variants back the opt-in low-precision serving
// path; they are never used unless a caller explicitly switches a model
// to float32, so offline float64 results stay byte-identical.

// SumSq returns the sum of squares of a, accumulated in index order.
func SumSq(a []float64) float64 {
	var sum float64
	for _, v := range a {
		sum += v * v
	}
	return sum
}

// SqDist returns the squared Euclidean distance between a and b over
// their common length, accumulated in index order.
func SqDist(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	a, b = a[:n], b[:n]
	var sum float64
	for i, av := range a {
		d := av - b[i]
		sum += d * d
	}
	return sum
}

// sqDistBlock is how many squared differences SqDistBounded accumulates
// between early-abandon checks. Checking once per small block instead of
// once per element keeps the inner loop branch-light while preserving
// exactness: sums of squares only grow, so a partial sum at or above the
// bound can never come back under it.
const sqDistBlock = 8

// SqDistBounded accumulates the squared distance between a and b in
// index order, abandoning once the running sum reaches bound (checked
// every sqDistBlock elements). The abandon is exact and order-preserving:
// when the true distance is below bound the returned sum equals SqDist
// bit for bit, because no partial sum ever trips the check.
func SqDistBounded(a, b []float64, bound float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	a, b = a[:n], b[:n]
	var sum float64
	for t := 0; t < n; {
		end := t + sqDistBlock
		if end > n {
			end = n
		}
		for ; t < end; t++ {
			d := a[t] - b[t]
			sum += d * d
		}
		if sum >= bound {
			break
		}
	}
	return sum
}

// Axpy adds alpha*x to y in place over the common length (y += alpha*x),
// the classic BLAS update shaped for bounds-check elimination. It is
// AddScaled with the operand roles spelled out and the lengths clamped
// rather than assumed.
func Axpy(alpha float64, x, y []float64) {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	x, y = x[:n], y[:n]
	for i, xv := range x {
		y[i] += alpha * xv
	}
}

// DotF32 returns the float32 dot product of a and b over their common
// length, accumulated in float32 in index order.
func DotF32(a, b []float32) float32 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	a, b = a[:n], b[:n]
	var sum float32
	for i, av := range a {
		sum += av * b[i]
	}
	return sum
}

// SqDistF32 returns the float32 squared distance between a and b over
// their common length, accumulated in float32 in index order.
func SqDistF32(a, b []float32) float32 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	a, b = a[:n], b[:n]
	var sum float32
	for i, av := range a {
		d := av - b[i]
		sum += d * d
	}
	return sum
}

// SqDistBoundedF32 is SqDistBounded in float32: squared differences are
// added in index order with an exact early abandon every sqDistBlock
// elements. Float32 additions of non-negative terms are monotone under
// round-to-nearest, so the abandon preserves the exhaustive float32
// winner just as the float64 version preserves the float64 one.
func SqDistBoundedF32(a, b []float32, bound float32) float32 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	a, b = a[:n], b[:n]
	var sum float32
	for t := 0; t < n; {
		end := t + sqDistBlock
		if end > n {
			end = n
		}
		for ; t < end; t++ {
			d := a[t] - b[t]
			sum += d * d
		}
		if sum >= bound {
			break
		}
	}
	return sum
}
