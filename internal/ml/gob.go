package ml

import (
	"bytes"
	"encoding/gob"
)

// gobMajority mirrors the unexported class distribution of a fitted
// MajorityClassifier for serialization.
type gobMajority struct {
	Probs []float64
}

// GobEncode serializes the fitted distribution.
func (m *MajorityClassifier) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(gobMajority{Probs: m.dist.probs}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode restores the fitted distribution.
func (m *MajorityClassifier) GobDecode(data []byte) error {
	var g gobMajority
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&g); err != nil {
		return err
	}
	m.dist = trivialDist{probs: g.Probs}
	return nil
}
