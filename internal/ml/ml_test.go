package ml

import (
	"math"
	"math/rand"
	"testing"
)

// nearestCentroid is a tiny test classifier: predicts by distance to the
// per-class mean feature vector.
type nearestCentroid struct {
	centroids [][]float64
}

func (n *nearestCentroid) Fit(X [][]float64, y []int, numClasses int) error {
	n.centroids = make([][]float64, numClasses)
	counts := make([]int, numClasses)
	for i, x := range X {
		c := y[i]
		if n.centroids[c] == nil {
			n.centroids[c] = make([]float64, len(x))
		}
		for j, v := range x {
			n.centroids[c][j] += v
		}
		counts[c]++
	}
	for c := range n.centroids {
		if counts[c] == 0 {
			continue
		}
		for j := range n.centroids[c] {
			n.centroids[c][j] /= float64(counts[c])
		}
	}
	return nil
}

func (n *nearestCentroid) PredictProba(x []float64) []float64 {
	probs := make([]float64, len(n.centroids))
	var sum float64
	for c, cen := range n.centroids {
		if cen == nil {
			continue
		}
		var d float64
		for j := range x {
			diff := x[j] - cen[j]
			d += diff * diff
		}
		probs[c] = math.Exp(-d)
		sum += probs[c]
	}
	if sum == 0 {
		for c := range probs {
			probs[c] = 1 / float64(len(probs))
		}
		return probs
	}
	for c := range probs {
		probs[c] /= sum
	}
	return probs
}

func blobs(rng *rand.Rand, nPerClass int) ([][]float64, []int) {
	var X [][]float64
	var y []int
	centers := [][]float64{{0, 0}, {5, 5}}
	for c, center := range centers {
		for i := 0; i < nPerClass; i++ {
			X = append(X, []float64{center[0] + rng.NormFloat64()*0.5, center[1] + rng.NormFloat64()*0.5})
			y = append(y, c)
		}
	}
	return X, y
}

func TestPredictAndPredictAll(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, y := blobs(rng, 20)
	c := &nearestCentroid{}
	if err := c.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	preds := PredictAll(c, X)
	correct := 0
	for i := range preds {
		if preds[i] == y[i] {
			correct++
		}
	}
	if correct < len(y)*9/10 {
		t.Fatalf("nearest centroid only got %d/%d right", correct, len(y))
	}
	if Predict(c, []float64{5, 5}) != 1 {
		t.Fatal("Predict wrong on obvious point")
	}
}

func TestCrossValProbaShapeAndQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X, y := blobs(rng, 25)
	probas, err := CrossValProba(func() Classifier { return &nearestCentroid{} }, X, y, 2, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(probas) != len(X) {
		t.Fatalf("probas len = %d", len(probas))
	}
	correct := 0
	for i, p := range probas {
		if p == nil {
			t.Fatalf("sample %d got no out-of-fold prediction", i)
		}
		var sum float64
		for _, v := range p {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("sample %d proba sum = %v", i, sum)
		}
		if argmax(p) == y[i] {
			correct++
		}
	}
	if correct < len(y)*8/10 {
		t.Fatalf("out-of-fold accuracy too low: %d/%d", correct, len(y))
	}
}

func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

func TestCrossValProbaErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	factory := func() Classifier { return &nearestCentroid{} }
	if _, err := CrossValProba(factory, [][]float64{{1}}, []int{0, 1}, 2, 2, rng); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := CrossValProba(factory, [][]float64{{1}, {2}}, []int{0, 1}, 2, 1, rng); err == nil {
		t.Fatal("folds=1 accepted")
	}
	if _, err := CrossValProba(factory, [][]float64{{1}}, []int{0}, 1, 3, rng); err == nil {
		t.Fatal("single sample accepted")
	}
}

func TestCrossValProbaSmallClasses(t *testing.T) {
	// A class with a single member must still get an out-of-fold estimate.
	rng := rand.New(rand.NewSource(4))
	X := [][]float64{{0, 0}, {0.1, 0}, {0.2, 0}, {5, 5}, {0, 0.1}, {0.1, 0.2}}
	y := []int{0, 0, 0, 1, 0, 0}
	probas, err := CrossValProba(func() Classifier { return &nearestCentroid{} }, X, y, 2, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range probas {
		if p == nil {
			t.Fatalf("sample %d missing", i)
		}
	}
}

func TestMajorityClassifier(t *testing.T) {
	m := &MajorityClassifier{}
	if err := m.Fit(nil, []int{0, 0, 0, 1}, 2); err != nil {
		t.Fatal(err)
	}
	p := m.PredictProba([]float64{42})
	if math.Abs(p[0]-0.75) > 1e-12 || math.Abs(p[1]-0.25) > 1e-12 {
		t.Fatalf("probs = %v", p)
	}
	// Empty training data falls back to uniform.
	if err := m.Fit(nil, nil, 4); err != nil {
		t.Fatal(err)
	}
	for _, v := range m.PredictProba(nil) {
		if math.Abs(v-0.25) > 1e-12 {
			t.Fatal("uniform fallback wrong")
		}
	}
	if err := m.Fit(nil, nil, 0); err == nil {
		t.Fatal("numClasses=0 accepted")
	}
}

func TestUniqueLabels(t *testing.T) {
	if UniqueLabels([]int{1, 1, 2, 3, 3}) != 3 {
		t.Fatal("unique labels wrong")
	}
	if UniqueLabels(nil) != 0 {
		t.Fatal("empty unique labels != 0")
	}
}
