// Package ml defines the tabular-classifier contract shared by the ETSC
// algorithm implementations (ECONOMY-K's per-time-point classifiers, the
// WEASEL / MiniROCKET heads) plus cross-validation utilities for obtaining
// out-of-fold probability estimates, as required by ECEC's reliability
// computation.
package ml

import (
	"fmt"
	"math/rand"

	"github.com/goetsc/goetsc/internal/stats"
)

// Classifier is a probabilistic multi-class classifier over fixed-length
// feature vectors.
type Classifier interface {
	// Fit trains on feature matrix X (one row per sample) with labels y in
	// [0, numClasses).
	Fit(X [][]float64, y []int, numClasses int) error
	// PredictProba returns the class-probability vector for one sample.
	// It must only be called after a successful Fit.
	PredictProba(x []float64) []float64
}

// Factory creates fresh, untrained classifiers; cross-validation needs one
// per fold.
type Factory func() Classifier

// Predict returns the argmax class of c's probability estimate for x.
func Predict(c Classifier, x []float64) int {
	return stats.ArgMax(c.PredictProba(x))
}

// PredictAll returns argmax predictions for every row of X.
func PredictAll(c Classifier, X [][]float64) []int {
	out := make([]int, len(X))
	for i, x := range X {
		out[i] = Predict(c, x)
	}
	return out
}

// CrossValProba produces out-of-fold probability predictions for every
// sample using k-fold cross validation with class stratification. The
// returned matrix is indexed like X. Classes with fewer members than folds
// still receive predictions: they are simply spread over fewer folds.
func CrossValProba(factory Factory, X [][]float64, y []int, numClasses, folds int, rng *rand.Rand) ([][]float64, error) {
	if len(X) != len(y) {
		return nil, fmt.Errorf("cross val: %d samples but %d labels", len(X), len(y))
	}
	if folds < 2 {
		return nil, fmt.Errorf("cross val: folds must be >= 2, got %d", folds)
	}
	if len(X) < folds {
		folds = len(X)
		if folds < 2 {
			return nil, fmt.Errorf("cross val: need at least 2 samples, got %d", len(X))
		}
	}
	// Stratified fold assignment.
	assignment := make([]int, len(X))
	byClass := make([][]int, numClasses)
	for i, label := range y {
		byClass[label] = append(byClass[label], i)
	}
	for _, idxs := range byClass {
		rng.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
		for pos, idx := range idxs {
			assignment[idx] = pos % folds
		}
	}
	out := make([][]float64, len(X))
	for f := 0; f < folds; f++ {
		var trainX [][]float64
		var trainY []int
		var testIdx []int
		for i := range X {
			if assignment[i] == f {
				testIdx = append(testIdx, i)
			} else {
				trainX = append(trainX, X[i])
				trainY = append(trainY, y[i])
			}
		}
		if len(testIdx) == 0 {
			continue
		}
		if len(trainX) == 0 {
			return nil, fmt.Errorf("cross val: fold %d has no training samples", f)
		}
		c := factory()
		if err := c.Fit(trainX, trainY, numClasses); err != nil {
			return nil, fmt.Errorf("cross val: fold %d: %w", f, err)
		}
		for _, i := range testIdx {
			out[i] = c.PredictProba(X[i])
		}
	}
	return out, nil
}

// MajorityClass returns the most frequent label in y (ties broken by the
// lower label), or 0 for empty input.
type trivialDist struct{ probs []float64 }

// MajorityClassifier is a baseline Classifier that always predicts the
// training class distribution. It doubles as a safe fallback when a real
// classifier cannot be trained (e.g. a degenerate prefix with one class).
type MajorityClassifier struct {
	dist trivialDist
}

// Fit records the empirical class distribution.
func (m *MajorityClassifier) Fit(X [][]float64, y []int, numClasses int) error {
	if numClasses < 1 {
		return fmt.Errorf("majority classifier: numClasses must be >= 1")
	}
	probs := make([]float64, numClasses)
	if len(y) == 0 {
		for i := range probs {
			probs[i] = 1 / float64(numClasses)
		}
	} else {
		for _, label := range y {
			probs[label]++
		}
		for i := range probs {
			probs[i] /= float64(len(y))
		}
	}
	m.dist = trivialDist{probs: probs}
	return nil
}

// PredictProba returns the stored training distribution.
func (m *MajorityClassifier) PredictProba(x []float64) []float64 {
	return append([]float64(nil), m.dist.probs...)
}

// UniqueLabels reports how many distinct labels appear in y.
func UniqueLabels(y []int) int {
	seen := map[int]bool{}
	for _, label := range y {
		seen[label] = true
	}
	return len(seen)
}
