// Package oversample implements a temporal-oriented synthetic minority
// oversampling technique in the spirit of T-SMOTE (Zhao et al., IJCAI
// 2022), which the paper lists among the methods to add to the framework.
// Synthetic minority series are built by interpolating a minority instance
// toward one of its minority-class nearest neighbours, with a small random
// temporal shift, so oversampled data stays plausible both in value and in
// phase. It is a preprocessing step: balance the training split, then fit
// any EarlyClassifier as usual.
package oversample

import (
	"fmt"
	"math/rand"

	"github.com/goetsc/goetsc/internal/stats"
	ts "github.com/goetsc/goetsc/internal/timeseries"
)

// Config controls the oversampler.
type Config struct {
	// TargetRatio is the desired (largest class)/(each class) ratio after
	// oversampling; 1 fully balances. Default 1.
	TargetRatio float64
	// K is the number of nearest minority neighbours to interpolate
	// toward. Default 3.
	K int
	// MaxShift is the largest temporal shift (time points) applied to the
	// synthetic series. Default 2.
	MaxShift int
	// Seed drives neighbour choice, interpolation weights and shifts.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.TargetRatio < 1 {
		c.TargetRatio = 1
	}
	if c.K <= 0 {
		c.K = 3
	}
	if c.MaxShift < 0 {
		c.MaxShift = 0
	} else if c.MaxShift == 0 {
		c.MaxShift = 2
	}
	return c
}

// Balance returns a new dataset containing the original instances plus
// synthetic minority instances, generated until every class reaches
// size(largest)/TargetRatio. Equal-length instances are required within a
// class (varying lengths across classes are fine).
func Balance(d *ts.Dataset, cfg Config) (*ts.Dataset, error) {
	cfg = cfg.withDefaults()
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("oversample: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	counts := d.ClassCounts()
	largest := 0
	for _, c := range counts {
		if c > largest {
			largest = c
		}
	}
	target := int(float64(largest) / cfg.TargetRatio)

	out := &ts.Dataset{
		Name:       d.Name + "+tsmote",
		ClassNames: d.ClassNames,
		VarNames:   d.VarNames,
		Freq:       d.Freq,
	}
	out.Instances = append(out.Instances, d.Instances...)

	byClass := make([][]int, d.NumClasses())
	for i, in := range d.Instances {
		byClass[in.Label] = append(byClass[in.Label], i)
	}
	for class, members := range byClass {
		need := target - len(members)
		if need <= 0 || len(members) < 2 {
			continue
		}
		for s := 0; s < need; s++ {
			a := d.Instances[members[rng.Intn(len(members))]]
			b := d.Instances[nearestOf(d, members, a, cfg.K, rng)]
			out.Instances = append(out.Instances, synthesize(a, b, class, cfg.MaxShift, rng))
		}
	}
	return out, nil
}

// nearestOf picks one of the K nearest same-class neighbours of instance a
// (uniformly), by flattened Euclidean distance.
func nearestOf(d *ts.Dataset, members []int, a ts.Instance, k int, rng *rand.Rand) int {
	type scored struct {
		idx  int
		dist float64
	}
	var all []scored
	for _, idx := range members {
		other := d.Instances[idx]
		if &other.Values == &a.Values {
			continue
		}
		var dist float64
		same := true
		for v := range a.Values {
			if len(other.Values[v]) != len(a.Values[v]) {
				same = false
				break
			}
			dist += stats.SquaredEuclidean(a.Values[v], other.Values[v])
		}
		if !same || dist == 0 {
			continue
		}
		all = append(all, scored{idx: idx, dist: dist})
	}
	if len(all) == 0 {
		return members[rng.Intn(len(members))]
	}
	// Partial selection of the k smallest.
	for i := 0; i < len(all) && i < k; i++ {
		min := i
		for j := i + 1; j < len(all); j++ {
			if all[j].dist < all[min].dist {
				min = j
			}
		}
		all[i], all[min] = all[min], all[i]
	}
	if k > len(all) {
		k = len(all)
	}
	return all[rng.Intn(k)].idx
}

// synthesize interpolates a toward b with a random weight and applies a
// small circular temporal shift.
func synthesize(a, b ts.Instance, label, maxShift int, rng *rand.Rand) ts.Instance {
	w := rng.Float64()
	shift := 0
	if maxShift > 0 {
		shift = rng.Intn(2*maxShift+1) - maxShift
	}
	values := make([][]float64, len(a.Values))
	for v := range a.Values {
		n := len(a.Values[v])
		row := make([]float64, n)
		for t := 0; t < n; t++ {
			tb := t
			if len(b.Values[v]) == n {
				tb = ((t+shift)%n + n) % n
			}
			av := a.Values[v][t]
			bv := av
			if tb < len(b.Values[v]) {
				bv = b.Values[v][tb]
			}
			row[t] = av + w*(bv-av)
		}
		values[v] = row
	}
	return ts.Instance{Values: values, Label: label}
}
