package oversample

import (
	"math"
	"math/rand"
	"testing"

	ts "github.com/goetsc/goetsc/internal/timeseries"
)

func imbalanced(rng *rand.Rand, major, minor, length int) *ts.Dataset {
	d := &ts.Dataset{Name: "imb"}
	for i := 0; i < major; i++ {
		row := make([]float64, length)
		for t := range row {
			row[t] = rng.NormFloat64()
		}
		d.Instances = append(d.Instances, ts.Instance{Values: [][]float64{row}, Label: 0})
	}
	for i := 0; i < minor; i++ {
		row := make([]float64, length)
		for t := range row {
			row[t] = 5 + rng.NormFloat64()
		}
		d.Instances = append(d.Instances, ts.Instance{Values: [][]float64{row}, Label: 1})
	}
	return d
}

func TestBalanceEqualizesClassCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := imbalanced(rng, 80, 10, 20)
	out, err := Balance(d, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	counts := out.ClassCounts()
	if counts[0] != 80 || counts[1] != 80 {
		t.Fatalf("counts = %v, want 80/80", counts)
	}
	// Original instances preserved.
	if out.Len() != 160 {
		t.Fatalf("len = %d", out.Len())
	}
	for i := 0; i < d.Len(); i++ {
		if out.Instances[i].Label != d.Instances[i].Label {
			t.Fatal("original instances reordered")
		}
	}
}

func TestTargetRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := imbalanced(rng, 90, 10, 12)
	out, err := Balance(d, Config{TargetRatio: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	counts := out.ClassCounts()
	if counts[1] != 45 {
		t.Fatalf("minority count = %d, want 45 (90/2)", counts[1])
	}
}

func TestSyntheticInstancesPlausible(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := imbalanced(rng, 60, 12, 16)
	out, err := Balance(d, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Synthetic minority series must stay near the minority distribution
	// (mean ~5), far from the majority's (~0).
	for _, in := range out.Instances[d.Len():] {
		if in.Label != 1 {
			t.Fatalf("synthetic instance with majority label %d", in.Label)
		}
		var sum float64
		for _, v := range in.Values[0] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("invalid synthetic value")
			}
			sum += v
		}
		mean := sum / float64(len(in.Values[0]))
		if mean < 3 || mean > 7 {
			t.Fatalf("synthetic mean %v outside the minority distribution", mean)
		}
	}
}

func TestBalancedAlready(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := imbalanced(rng, 30, 30, 10)
	out, err := Balance(d, Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != d.Len() {
		t.Fatalf("balanced dataset grew: %d -> %d", d.Len(), out.Len())
	}
}

func TestSingleMinorityMemberSkipped(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := imbalanced(rng, 20, 1, 10)
	out, err := Balance(d, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Cannot interpolate with one member; class stays as is.
	if out.ClassCounts()[1] != 1 {
		t.Fatalf("singleton class oversampled: %v", out.ClassCounts())
	}
}

func TestMultivariateSynthesis(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := &ts.Dataset{Name: "mv"}
	for i := 0; i < 20; i++ {
		a := make([]float64, 8)
		b := make([]float64, 8)
		for t := range a {
			a[t] = rng.NormFloat64()
			b[t] = rng.NormFloat64()
		}
		d.Instances = append(d.Instances, ts.Instance{Values: [][]float64{a, b}, Label: 0})
	}
	for i := 0; i < 4; i++ {
		a := make([]float64, 8)
		b := make([]float64, 8)
		for t := range a {
			a[t] = 4 + rng.NormFloat64()
			b[t] = -4 + rng.NormFloat64()
		}
		d.Instances = append(d.Instances, ts.Instance{Values: [][]float64{a, b}, Label: 1})
	}
	out, err := Balance(d, Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if out.ClassCounts()[1] != 20 {
		t.Fatalf("counts = %v", out.ClassCounts())
	}
}

func TestInvalidDataset(t *testing.T) {
	if _, err := Balance(&ts.Dataset{Name: "empty"}, Config{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := imbalanced(rng, 40, 8, 10)
	a, err := Balance(d, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Balance(d, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("sizes differ")
	}
	for i := range a.Instances {
		if a.Instances[i].Values[0][0] != b.Instances[i].Values[0][0] {
			t.Fatal("same seed, different synthesis")
		}
	}
}
