package neural

import "math/rand"

// LSTM is a standard long short-term memory layer processing a sequence of
// input vectors and returning the final hidden state. Gradients flow via
// full backpropagation through time.
type LSTM struct {
	In, Hidden int

	// Gate order in the stacked weight matrices: input, forget, cell, output.
	wx *Param // [4H][in]
	wh *Param // [4H][H]
	b  *Param // [4H]

	// caches per time step for BPTT
	xs            [][]float64
	hs, cs        [][]float64 // h[0], c[0] are the initial zero states
	gi, gf, gg, o [][]float64
}

// NewLSTM creates an LSTM with Glorot weights and forget-gate bias 1.
func NewLSTM(in, hidden int, rng *rand.Rand) *LSTM {
	l := &LSTM{In: in, Hidden: hidden}
	l.wx = newParam(4 * hidden * in)
	glorotInit(l.wx.Val, in, hidden, rng)
	l.wh = newParam(4 * hidden * hidden)
	glorotInit(l.wh.Val, hidden, hidden, rng)
	l.b = newParam(4 * hidden)
	// Standard trick: bias the forget gate open at initialization.
	for h := 0; h < hidden; h++ {
		l.b.Val[hidden+h] = 1
	}
	return l
}

// ForwardSeq consumes the sequence (steps × in) and returns the final
// hidden state.
func (l *LSTM) ForwardSeq(seq [][]float64, train bool) []float64 {
	hs := l.ForwardSeqAll(seq, train)
	return hs[len(hs)-1]
}

// ForwardSeqAll consumes the sequence and returns every hidden state
// h_1..h_steps (needed by attention pooling).
func (l *LSTM) ForwardSeqAll(seq [][]float64, train bool) [][]float64 {
	H := l.Hidden
	steps := len(seq)
	h := make([]float64, H)
	c := make([]float64, H)
	all := make([][]float64, 0, steps)
	if train {
		l.xs = seq
		l.hs = [][]float64{append([]float64(nil), h...)}
		l.cs = [][]float64{append([]float64(nil), c...)}
		l.gi = make([][]float64, steps)
		l.gf = make([][]float64, steps)
		l.gg = make([][]float64, steps)
		l.o = make([][]float64, steps)
	}
	for t := 0; t < steps; t++ {
		x := seq[t]
		gi := make([]float64, H)
		gf := make([]float64, H)
		gg := make([]float64, H)
		o := make([]float64, H)
		newC := make([]float64, H)
		newH := make([]float64, H)
		for j := 0; j < H; j++ {
			zi := l.gatePre(0, j, x, h)
			zf := l.gatePre(1, j, x, h)
			zg := l.gatePre(2, j, x, h)
			zo := l.gatePre(3, j, x, h)
			gi[j] = sigmoid(zi)
			gf[j] = sigmoid(zf)
			gg[j] = tanh(zg)
			o[j] = sigmoid(zo)
			newC[j] = gf[j]*c[j] + gi[j]*gg[j]
			newH[j] = o[j] * tanh(newC[j])
		}
		h, c = newH, newC
		all = append(all, h)
		if train {
			l.gi[t], l.gf[t], l.gg[t], l.o[t] = gi, gf, gg, o
			l.hs = append(l.hs, append([]float64(nil), h...))
			l.cs = append(l.cs, append([]float64(nil), c...))
		}
	}
	return all
}

// gatePre computes the pre-activation of gate g (0..3) unit j.
func (l *LSTM) gatePre(g, j int, x, h []float64) float64 {
	H := l.Hidden
	row := (g*H + j)
	sum := l.b.Val[row]
	wx := l.wx.Val[row*l.In : (row+1)*l.In]
	for i, v := range x {
		if i >= l.In {
			break
		}
		sum += wx[i] * v
	}
	wh := l.wh.Val[row*H : (row+1)*H]
	for i, v := range h {
		sum += wh[i] * v
	}
	return sum
}

// BackwardSeq backpropagates dL/dh_final through time, accumulating
// parameter gradients, and returns dL/dx per step.
func (l *LSTM) BackwardSeq(gradH []float64) [][]float64 {
	grads := make([][]float64, len(l.xs))
	grads[len(grads)-1] = gradH
	return l.BackwardSeqAll(grads)
}

// BackwardSeqAll backpropagates per-step gradients dL/dh_t (nil entries
// mean zero) through time, accumulating parameter gradients, and returns
// dL/dx per step.
func (l *LSTM) BackwardSeqAll(gradHs [][]float64) [][]float64 {
	H := l.Hidden
	steps := len(l.xs)
	dh := make([]float64, H)
	if g := gradHs[steps-1]; g != nil {
		copy(dh, g)
	}
	dc := make([]float64, H)
	dxs := make([][]float64, steps)
	for t := steps - 1; t >= 0; t-- {
		x := l.xs[t]
		hPrev := l.hs[t]
		cPrev := l.cs[t]
		cCur := l.cs[t+1]
		gi, gf, gg, o := l.gi[t], l.gf[t], l.gg[t], l.o[t]
		dx := make([]float64, len(x))
		dhPrev := make([]float64, H)
		dcPrev := make([]float64, H)
		for j := 0; j < H; j++ {
			tc := tanh(cCur[j])
			dO := dh[j] * tc
			dC := dh[j]*o[j]*(1-tc*tc) + dc[j]
			dGi := dC * gg[j]
			dGf := dC * cPrev[j]
			dGg := dC * gi[j]
			dcPrev[j] = dC * gf[j]
			// Through the gate nonlinearities.
			dzi := dGi * gi[j] * (1 - gi[j])
			dzf := dGf * gf[j] * (1 - gf[j])
			dzg := dGg * (1 - gg[j]*gg[j])
			dzo := dO * o[j] * (1 - o[j])
			for g, dz := range []float64{dzi, dzf, dzg, dzo} {
				if dz == 0 {
					continue
				}
				row := g*H + j
				l.b.Grad[row] += dz
				wxRow := l.wx.Val[row*l.In : (row+1)*l.In]
				wxGrad := l.wx.Grad[row*l.In : (row+1)*l.In]
				for i := 0; i < l.In && i < len(x); i++ {
					wxGrad[i] += dz * x[i]
					dx[i] += dz * wxRow[i]
				}
				whRow := l.wh.Val[row*H : (row+1)*H]
				whGrad := l.wh.Grad[row*H : (row+1)*H]
				for i := 0; i < H; i++ {
					whGrad[i] += dz * hPrev[i]
					dhPrev[i] += dz * whRow[i]
				}
			}
		}
		dxs[t] = dx
		dh = dhPrev
		if t > 0 {
			if g := gradHs[t-1]; g != nil {
				for j := range dh {
					dh[j] += g[j]
				}
			}
		}
		dc = dcPrev
	}
	return dxs
}

// Params returns the learnable parameters.
func (l *LSTM) Params() []*Param { return []*Param{l.wx, l.wh, l.b} }
