// Package neural is a small neural-network layer library with manual
// backpropagation, sufficient to assemble the MLSTM-FCN classifier of
// Karim et al. (Neural Networks 2019): 1-D convolutions, per-channel
// normalization, ReLU, dropout, squeeze-and-excite blocks, global average
// pooling, an LSTM with backpropagation through time, dense layers and a
// softmax cross-entropy loss, trained with Adam.
//
// Activations flow through layers as [channels][time] matrices for the
// convolutional path and as flat vectors for the fully-connected path.
// Layers process one sample at a time; mini-batching is achieved by
// accumulating gradients across samples before an optimizer step.
package neural

import (
	"math"
	"math/rand"
)

// Param is one learnable tensor with its gradient accumulator.
type Param struct {
	Val  []float64
	Grad []float64
}

// newParam allocates a parameter of length n.
func newParam(n int) *Param {
	return &Param{Val: make([]float64, n), Grad: make([]float64, n)}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.Grad {
		p.Grad[i] = 0
	}
}

// glorotInit fills vals with Glorot-uniform noise for a layer with the
// given fan-in and fan-out.
func glorotInit(vals []float64, fanIn, fanOut int, rng *rand.Rand) {
	limit := math.Sqrt(6 / float64(fanIn+fanOut))
	for i := range vals {
		vals[i] = (rng.Float64()*2 - 1) * limit
	}
}

// Adam is the Adam optimizer over a set of parameters.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	params []*Param
	m, v   [][]float64
	step   int
}

// NewAdam creates an optimizer for the given parameters. lr <= 0 selects
// 1e-3.
func NewAdam(params []*Param, lr float64) *Adam {
	if lr <= 0 {
		lr = 1e-3
	}
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8, params: params}
	a.m = make([][]float64, len(params))
	a.v = make([][]float64, len(params))
	for i, p := range params {
		a.m[i] = make([]float64, len(p.Val))
		a.v[i] = make([]float64, len(p.Val))
	}
	return a
}

// Step applies one Adam update using the accumulated gradients scaled by
// 1/batchSize, then clears them.
func (a *Adam) Step(batchSize int) {
	a.step++
	corr1 := 1 - math.Pow(a.Beta1, float64(a.step))
	corr2 := 1 - math.Pow(a.Beta2, float64(a.step))
	scale := 1 / float64(batchSize)
	for i, p := range a.params {
		for j := range p.Val {
			g := p.Grad[j] * scale
			a.m[i][j] = a.Beta1*a.m[i][j] + (1-a.Beta1)*g
			a.v[i][j] = a.Beta2*a.v[i][j] + (1-a.Beta2)*g*g
			p.Val[j] -= a.LR * (a.m[i][j] / corr1) / (math.Sqrt(a.v[i][j]/corr2) + a.Epsilon)
		}
		p.ZeroGrad()
	}
}

// matrix allocates a channels × time activation.
func matrix(channels, time int) [][]float64 {
	out := make([][]float64, channels)
	for c := range out {
		out[c] = make([]float64, time)
	}
	return out
}
