package neural

import (
	"math"
	"math/rand"
	"testing"
)

const (
	gcEps = 1e-5
	gcTol = 1e-4
)

// relErr computes |a-b| / max(1, |a|, |b|).
func relErr(a, b float64) float64 {
	denom := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) / denom
}

func randMatrix(rng *rand.Rand, c, t int) [][]float64 {
	m := matrix(c, t)
	for i := range m {
		for j := range m[i] {
			m[i][j] = rng.NormFloat64()
		}
	}
	return m
}

// scalarLoss reduces a [channels][time] activation to a scalar with fixed
// random coefficients so that gradients are non-trivial.
type scalarLoss struct{ coeff [][]float64 }

func newScalarLoss(rng *rand.Rand, c, t int) *scalarLoss {
	return &scalarLoss{coeff: randMatrix(rng, c, t)}
}

func (s *scalarLoss) value(y [][]float64) float64 {
	var sum float64
	for c := range y {
		for t := range y[c] {
			sum += s.coeff[c][t] * y[c][t]
		}
	}
	return sum
}

func (s *scalarLoss) grad() [][]float64 {
	out := matrix(len(s.coeff), len(s.coeff[0]))
	for c := range s.coeff {
		copy(out[c], s.coeff[c])
	}
	return out
}

type vecLoss struct{ coeff []float64 }

func newVecLoss(rng *rand.Rand, n int) *vecLoss {
	c := make([]float64, n)
	for i := range c {
		c[i] = rng.NormFloat64()
	}
	return &vecLoss{coeff: c}
}

func (v *vecLoss) value(y []float64) float64 {
	var sum float64
	for i := range y {
		sum += v.coeff[i] * y[i]
	}
	return sum
}

func (v *vecLoss) grad() []float64 { return append([]float64(nil), v.coeff...) }

// checkParamGrads verifies each parameter's analytic gradient numerically,
// given forward (recomputing the loss) and the already-accumulated grads.
func checkParamGrads(t *testing.T, name string, params []*Param, forward func() float64) {
	t.Helper()
	for pi, p := range params {
		for i := range p.Val {
			orig := p.Val[i]
			p.Val[i] = orig + gcEps
			up := forward()
			p.Val[i] = orig - gcEps
			down := forward()
			p.Val[i] = orig
			numeric := (up - down) / (2 * gcEps)
			if relErr(numeric, p.Grad[i]) > gcTol {
				t.Fatalf("%s: param %d[%d]: analytic %v vs numeric %v", name, pi, i, p.Grad[i], numeric)
			}
		}
	}
}

func TestConv1DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	layer := NewConv1D(2, 3, 5, rng)
	x := randMatrix(rng, 2, 7)
	loss := newScalarLoss(rng, 3, 7)
	forward := func() float64 { return loss.value(layer.Forward(x, false)) }

	layer.Forward(x, true)
	dx := layer.Backward(loss.grad())
	checkParamGrads(t, "conv", layer.Params(), forward)

	// Input gradient check.
	for c := range x {
		for i := range x[c] {
			orig := x[c][i]
			x[c][i] = orig + gcEps
			up := forward()
			x[c][i] = orig - gcEps
			down := forward()
			x[c][i] = orig
			numeric := (up - down) / (2 * gcEps)
			if relErr(numeric, dx[c][i]) > gcTol {
				t.Fatalf("conv input grad [%d][%d]: analytic %v vs numeric %v", c, i, dx[c][i], numeric)
			}
		}
	}
}

func TestChannelNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	layer := NewChannelNorm(3)
	x := randMatrix(rng, 3, 6)
	loss := newScalarLoss(rng, 3, 6)
	// Training-mode forward uses per-sample statistics, so the numeric
	// check must also run in training mode; running averages drift but do
	// not affect the output in training mode.
	forward := func() float64 { return loss.value(layer.Forward(x, true)) }

	layer.Forward(x, true)
	layer.gamma.ZeroGrad()
	layer.beta.ZeroGrad()
	dx := layer.Backward(loss.grad())
	checkParamGrads(t, "norm", layer.Params(), forward)

	for c := range x {
		for i := range x[c] {
			orig := x[c][i]
			x[c][i] = orig + gcEps
			up := forward()
			x[c][i] = orig - gcEps
			down := forward()
			x[c][i] = orig
			numeric := (up - down) / (2 * gcEps)
			if relErr(numeric, dx[c][i]) > gcTol {
				t.Fatalf("norm input grad [%d][%d]: analytic %v vs numeric %v", c, i, dx[c][i], numeric)
			}
		}
	}
}

func TestChannelNormInference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	layer := NewChannelNorm(2)
	// Train on several samples to populate running stats.
	for i := 0; i < 50; i++ {
		layer.Forward(randMatrix(rng, 2, 8), true)
	}
	x := randMatrix(rng, 2, 8)
	y1 := layer.Forward(x, false)
	y2 := layer.Forward(x, false)
	for c := range y1 {
		for t2 := range y1[c] {
			if y1[c][t2] != y2[c][t2] {
				t.Fatal("inference not deterministic")
			}
		}
	}
}

func TestReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	layer := &ReLU{}
	x := randMatrix(rng, 2, 5)
	loss := newScalarLoss(rng, 2, 5)
	forward := func() float64 { return loss.value(layer.Forward(x, false)) }
	layer.Forward(x, true)
	dx := layer.Backward(loss.grad())
	for c := range x {
		for i := range x[c] {
			if math.Abs(x[c][i]) < 0.05 {
				continue // numeric check unstable at the kink
			}
			orig := x[c][i]
			x[c][i] = orig + gcEps
			up := forward()
			x[c][i] = orig - gcEps
			down := forward()
			x[c][i] = orig
			numeric := (up - down) / (2 * gcEps)
			if relErr(numeric, dx[c][i]) > gcTol {
				t.Fatalf("relu input grad [%d][%d]: analytic %v vs numeric %v", c, i, dx[c][i], numeric)
			}
		}
	}
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	layer := NewDense(4, 3, rng)
	x := make([]float64, 4)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	loss := newVecLoss(rng, 3)
	forward := func() float64 { return loss.value(layer.ForwardVec(x, false)) }
	layer.ForwardVec(x, true)
	dx := layer.BackwardVec(loss.grad())
	checkParamGrads(t, "dense", layer.Params(), forward)
	for i := range x {
		orig := x[i]
		x[i] = orig + gcEps
		up := forward()
		x[i] = orig - gcEps
		down := forward()
		x[i] = orig
		numeric := (up - down) / (2 * gcEps)
		if relErr(numeric, dx[i]) > gcTol {
			t.Fatalf("dense input grad [%d]: analytic %v vs numeric %v", i, dx[i], numeric)
		}
	}
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	layer := &GlobalAvgPool{}
	x := randMatrix(rng, 3, 4)
	loss := newVecLoss(rng, 3)
	forward := func() float64 { return loss.value(layer.Forward(x, false)) }
	layer.Forward(x, true)
	dx := layer.Backward(loss.grad())
	for c := range x {
		for i := range x[c] {
			orig := x[c][i]
			x[c][i] = orig + gcEps
			up := forward()
			x[c][i] = orig - gcEps
			down := forward()
			x[c][i] = orig
			numeric := (up - down) / (2 * gcEps)
			if relErr(numeric, dx[c][i]) > gcTol {
				t.Fatalf("gap input grad [%d][%d]: analytic %v vs numeric %v", c, i, dx[c][i], numeric)
			}
		}
	}
}

func TestSqueezeExciteGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	layer := NewSqueezeExcite(4, 2, rng)
	x := randMatrix(rng, 4, 5)
	loss := newScalarLoss(rng, 4, 5)
	forward := func() float64 { return loss.value(layer.Forward(x, false)) }
	layer.Forward(x, true)
	dx := layer.Backward(loss.grad())
	checkParamGrads(t, "se", layer.Params(), forward)
	for c := range x {
		for i := range x[c] {
			orig := x[c][i]
			x[c][i] = orig + gcEps
			up := forward()
			x[c][i] = orig - gcEps
			down := forward()
			x[c][i] = orig
			numeric := (up - down) / (2 * gcEps)
			if relErr(numeric, dx[c][i]) > gcTol {
				t.Fatalf("se input grad [%d][%d]: analytic %v vs numeric %v", c, i, dx[c][i], numeric)
			}
		}
	}
}

func TestLSTMGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	layer := NewLSTM(3, 4, rng)
	seq := [][]float64{
		{0.5, -0.2, 0.1},
		{-0.3, 0.8, 0.4},
		{0.2, 0.1, -0.6},
	}
	loss := newVecLoss(rng, 4)
	forward := func() float64 { return loss.value(layer.ForwardSeq(seq, false)) }
	layer.ForwardSeq(seq, true)
	dxs := layer.BackwardSeq(loss.grad())
	checkParamGrads(t, "lstm", layer.Params(), forward)
	for s := range seq {
		for i := range seq[s] {
			orig := seq[s][i]
			seq[s][i] = orig + gcEps
			up := forward()
			seq[s][i] = orig - gcEps
			down := forward()
			seq[s][i] = orig
			numeric := (up - down) / (2 * gcEps)
			if relErr(numeric, dxs[s][i]) > gcTol {
				t.Fatalf("lstm input grad [%d][%d]: analytic %v vs numeric %v", s, i, dxs[s][i], numeric)
			}
		}
	}
}

func TestSoftmaxCrossEntropyGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	logits := []float64{0.3, -0.5, 1.2}
	label := 1
	loss := &SoftmaxCrossEntropy{}
	loss.Forward(logits, label)
	grad := loss.Backward()
	for i := range logits {
		orig := logits[i]
		logits[i] = orig + gcEps
		up := loss.Forward(logits, label)
		logits[i] = orig - gcEps
		down := loss.Forward(logits, label)
		logits[i] = orig
		numeric := (up - down) / (2 * gcEps)
		if relErr(numeric, grad[i]) > gcTol {
			t.Fatalf("loss grad [%d]: analytic %v vs numeric %v", i, grad[i], numeric)
		}
	}
	_ = rng
}

func TestDropout(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d := NewDropout(0.5, rng)
	x := make([]float64, 1000)
	for i := range x {
		x[i] = 1
	}
	// Inference: identity.
	y := d.ForwardVec(x, false)
	for i := range y {
		if y[i] != 1 {
			t.Fatal("inference dropout not identity")
		}
	}
	// Training: roughly half dropped, survivors scaled by 2.
	y = d.ForwardVec(x, true)
	zeros, twos := 0, 0
	for _, v := range y {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Fatalf("dropped %d/1000, want ~500", zeros)
	}
	// Backward respects the same mask.
	g := make([]float64, 1000)
	for i := range g {
		g[i] = 1
	}
	dg := d.BackwardVec(g)
	for i := range dg {
		if (y[i] == 0) != (dg[i] == 0) {
			t.Fatal("backward mask mismatch")
		}
	}
}

func TestAdamReducesLoss(t *testing.T) {
	// Minimize ||w - target||² with Adam via a Dense layer.
	rng := rand.New(rand.NewSource(11))
	layer := NewDense(2, 1, rng)
	opt := NewAdam(layer.Params(), 0.05)
	x := []float64{1, 2}
	target := 5.0
	var first, last float64
	for iter := 0; iter < 300; iter++ {
		y := layer.ForwardVec(x, true)
		diff := y[0] - target
		lossVal := diff * diff
		if iter == 0 {
			first = lossVal
		}
		last = lossVal
		layer.BackwardVec([]float64{2 * diff})
		opt.Step(1)
	}
	if last > first/100 || last > 1e-3 {
		t.Fatalf("Adam failed to minimize: first=%v last=%v", first, last)
	}
}
