package neural

import (
	"math"
	"math/rand"
)

// ReLU applies max(0, x) element-wise on [channels][time] activations.
type ReLU struct {
	mask [][]bool
}

// Forward clamps negatives to zero.
func (r *ReLU) Forward(x [][]float64, train bool) [][]float64 {
	y := matrix(len(x), len(x[0]))
	if train {
		r.mask = make([][]bool, len(x))
	}
	for c := range x {
		if train {
			r.mask[c] = make([]bool, len(x[c]))
		}
		for t, v := range x[c] {
			if v > 0 {
				y[c][t] = v
				if train {
					r.mask[c][t] = true
				}
			}
		}
	}
	return y
}

// Backward zeroes gradients where the input was negative.
func (r *ReLU) Backward(grad [][]float64) [][]float64 {
	dx := matrix(len(grad), len(grad[0]))
	for c := range grad {
		for t, g := range grad[c] {
			if r.mask[c][t] {
				dx[c][t] = g
			}
		}
	}
	return dx
}

// Dropout zeroes a fraction of vector activations during training, scaling
// the survivors (inverted dropout).
type Dropout struct {
	Rate float64
	rng  *rand.Rand
	mask []float64
}

// NewDropout creates a dropout layer with the given drop probability.
func NewDropout(rate float64, rng *rand.Rand) *Dropout {
	return &Dropout{Rate: rate, rng: rng}
}

// ForwardVec applies dropout to a flat vector.
func (d *Dropout) ForwardVec(x []float64, train bool) []float64 {
	if !train || d.Rate <= 0 {
		return x
	}
	y := make([]float64, len(x))
	d.mask = make([]float64, len(x))
	keep := 1 - d.Rate
	for i, v := range x {
		if d.rng.Float64() < keep {
			d.mask[i] = 1 / keep
			y[i] = v / keep
		}
	}
	return y
}

// BackwardVec propagates gradients through the dropout mask.
func (d *Dropout) BackwardVec(grad []float64) []float64 {
	if d.mask == nil {
		return grad
	}
	dx := make([]float64, len(grad))
	for i, g := range grad {
		dx[i] = g * d.mask[i]
	}
	return dx
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

func tanh(z float64) float64 { return math.Tanh(z) }
