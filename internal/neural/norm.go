package neural

import "math"

// ChannelNorm normalizes each channel over the time axis with learned scale
// and shift. It plays the role of MLSTM-FCN's batch normalization in this
// one-sample-at-a-time training regime (an instance-normalization variant;
// running statistics are kept for inference).
type ChannelNorm struct {
	Channels int
	Momentum float64
	Eps      float64

	gamma, beta *Param

	runMean, runVar []float64

	// caches for backward
	xHat       [][]float64
	invStd     []float64
	timePoints int
}

// NewChannelNorm creates a norm layer with unit scale and zero shift.
func NewChannelNorm(channels int) *ChannelNorm {
	n := &ChannelNorm{Channels: channels, Momentum: 0.9, Eps: 1e-5}
	n.gamma = newParam(channels)
	for i := range n.gamma.Val {
		n.gamma.Val[i] = 1
	}
	n.beta = newParam(channels)
	n.runMean = make([]float64, channels)
	n.runVar = make([]float64, channels)
	for i := range n.runVar {
		n.runVar[i] = 1
	}
	return n
}

// Forward normalizes x ([channels][time]). In training mode statistics are
// computed from x and folded into the running averages; in inference mode
// the running averages are used.
func (n *ChannelNorm) Forward(x [][]float64, train bool) [][]float64 {
	T := len(x[0])
	y := matrix(n.Channels, T)
	if train {
		n.xHat = matrix(n.Channels, T)
		n.invStd = make([]float64, n.Channels)
		n.timePoints = T
	}
	for c := 0; c < n.Channels; c++ {
		var mean, variance float64
		if train {
			var sum, ss float64
			for _, v := range x[c] {
				sum += v
				ss += v * v
			}
			mean = sum / float64(T)
			variance = ss/float64(T) - mean*mean
			if variance < 0 {
				variance = 0
			}
			n.runMean[c] = n.Momentum*n.runMean[c] + (1-n.Momentum)*mean
			n.runVar[c] = n.Momentum*n.runVar[c] + (1-n.Momentum)*variance
		} else {
			mean, variance = n.runMean[c], n.runVar[c]
		}
		invStd := 1 / math.Sqrt(variance+n.Eps)
		g, b := n.gamma.Val[c], n.beta.Val[c]
		for t := 0; t < T; t++ {
			xh := (x[c][t] - mean) * invStd
			if train {
				n.xHat[c][t] = xh
			}
			y[c][t] = g*xh + b
		}
		if train {
			n.invStd[c] = invStd
		}
	}
	return y
}

// Backward propagates gradients through the normalization.
func (n *ChannelNorm) Backward(grad [][]float64) [][]float64 {
	T := n.timePoints
	dx := matrix(n.Channels, T)
	for c := 0; c < n.Channels; c++ {
		g := n.gamma.Val[c]
		var sumDy, sumDyXhat float64
		for t := 0; t < T; t++ {
			dy := grad[c][t]
			n.gamma.Grad[c] += dy * n.xHat[c][t]
			n.beta.Grad[c] += dy
			sumDy += dy
			sumDyXhat += dy * n.xHat[c][t]
		}
		// dL/dx for normalization over the time axis.
		for t := 0; t < T; t++ {
			dy := grad[c][t]
			dx[c][t] = g * n.invStd[c] * (dy - sumDy/float64(T) - n.xHat[c][t]*sumDyXhat/float64(T))
		}
	}
	return dx
}

// Params returns the learnable scale and shift.
func (n *ChannelNorm) Params() []*Param { return []*Param{n.gamma, n.beta} }

// RunningStats returns copies of the inference-time running mean and
// variance, so a trained layer can be serialized.
func (n *ChannelNorm) RunningStats() (mean, variance []float64) {
	return append([]float64(nil), n.runMean...), append([]float64(nil), n.runVar...)
}

// SetRunningStats installs previously captured running statistics,
// restoring a deserialized layer's inference behaviour.
func (n *ChannelNorm) SetRunningStats(mean, variance []float64) {
	copy(n.runMean, mean)
	copy(n.runVar, variance)
}
