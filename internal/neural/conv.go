package neural

import "math/rand"

// Conv1D is a 1-D convolution with "same" zero padding: output length
// equals input length regardless of kernel size.
type Conv1D struct {
	InChannels, OutChannels, Kernel int

	weight *Param // [out][in][k] flattened
	bias   *Param // [out]

	inCache [][]float64
}

// NewConv1D creates a Glorot-initialized convolution layer.
func NewConv1D(inChannels, outChannels, kernel int, rng *rand.Rand) *Conv1D {
	c := &Conv1D{InChannels: inChannels, OutChannels: outChannels, Kernel: kernel}
	c.weight = newParam(outChannels * inChannels * kernel)
	glorotInit(c.weight.Val, inChannels*kernel, outChannels*kernel, rng)
	c.bias = newParam(outChannels)
	return c
}

func (c *Conv1D) w(out, in, k int) int { return (out*c.InChannels+in)*c.Kernel + k }

// Forward computes the convolution of x ([in][time]).
func (c *Conv1D) Forward(x [][]float64, train bool) [][]float64 {
	if train {
		c.inCache = x
	}
	T := len(x[0])
	left := (c.Kernel - 1) / 2
	y := matrix(c.OutChannels, T)
	for o := 0; o < c.OutChannels; o++ {
		b := c.bias.Val[o]
		row := y[o]
		for t := 0; t < T; t++ {
			sum := b
			for in := 0; in < c.InChannels; in++ {
				xin := x[in]
				base := c.w(o, in, 0)
				for k := 0; k < c.Kernel; k++ {
					src := t + k - left
					if src < 0 || src >= T {
						continue
					}
					sum += c.weight.Val[base+k] * xin[src]
				}
			}
			row[t] = sum
		}
	}
	return y
}

// Backward accumulates parameter gradients and returns dL/dx.
func (c *Conv1D) Backward(grad [][]float64) [][]float64 {
	x := c.inCache
	T := len(x[0])
	left := (c.Kernel - 1) / 2
	dx := matrix(c.InChannels, T)
	for o := 0; o < c.OutChannels; o++ {
		gRow := grad[o]
		for t := 0; t < T; t++ {
			g := gRow[t]
			if g == 0 {
				continue
			}
			c.bias.Grad[o] += g
			for in := 0; in < c.InChannels; in++ {
				xin := x[in]
				dxin := dx[in]
				base := c.w(o, in, 0)
				for k := 0; k < c.Kernel; k++ {
					src := t + k - left
					if src < 0 || src >= T {
						continue
					}
					c.weight.Grad[base+k] += g * xin[src]
					dxin[src] += g * c.weight.Val[base+k]
				}
			}
		}
	}
	return dx
}

// Params returns the learnable parameters.
func (c *Conv1D) Params() []*Param { return []*Param{c.weight, c.bias} }
