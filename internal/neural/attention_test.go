package neural

import (
	"math"
	"math/rand"
	"testing"
)

func TestAttentionGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	layer := NewAttention(3, 4, rng)
	seq := [][]float64{
		{0.5, -0.2, 0.1},
		{-0.3, 0.8, 0.4},
		{0.2, 0.1, -0.6},
		{0.9, -0.5, 0.3},
	}
	loss := newVecLoss(rng, 3)
	forward := func() float64 { return loss.value(layer.ForwardSeq(seq, false)) }

	layer.ForwardSeq(seq, true)
	dhs := layer.BackwardSeq(loss.grad())
	checkParamGrads(t, "attention", layer.Params(), forward)
	for s := range seq {
		for i := range seq[s] {
			orig := seq[s][i]
			seq[s][i] = orig + gcEps
			up := forward()
			seq[s][i] = orig - gcEps
			down := forward()
			seq[s][i] = orig
			numeric := (up - down) / (2 * gcEps)
			if relErr(numeric, dhs[s][i]) > gcTol {
				t.Fatalf("attention input grad [%d][%d]: analytic %v vs numeric %v", s, i, dhs[s][i], numeric)
			}
		}
	}
}

func TestAttentionScoresAreDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	layer := NewAttention(2, 3, rng)
	seq := [][]float64{{1, 0}, {0, 1}, {5, 5}}
	layer.ForwardSeq(seq, true)
	var sum float64
	for _, s := range layer.Scores() {
		if s < 0 || s > 1 {
			t.Fatalf("score out of range: %v", layer.Scores())
		}
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("scores sum = %v", sum)
	}
}

func TestAttentionOutputIsConvexCombination(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	layer := NewAttention(1, 2, rng)
	seq := [][]float64{{1}, {2}, {3}}
	out := layer.ForwardSeq(seq, false)
	if out[0] < 1-1e-9 || out[0] > 3+1e-9 {
		t.Fatalf("output %v outside the convex hull of inputs", out[0])
	}
}

func TestLSTMThroughAttentionGradients(t *testing.T) {
	// End-to-end gradient check of the attention-LSTM branch: LSTM emits
	// all hidden states, attention pools them.
	rng := rand.New(rand.NewSource(4))
	lstm := NewLSTM(2, 3, rng)
	attn := NewAttention(3, 3, rng)
	seq := [][]float64{
		{0.4, -0.7},
		{-0.1, 0.2},
		{0.8, 0.5},
	}
	loss := newVecLoss(rng, 3)
	forward := func() float64 {
		hs := lstm.ForwardSeqAll(seq, false)
		return loss.value(attn.ForwardSeq(hs, false))
	}

	hs := lstm.ForwardSeqAll(seq, true)
	attn.ForwardSeq(hs, true)
	dhs := attn.BackwardSeq(loss.grad())
	dxs := lstm.BackwardSeqAll(dhs)

	checkParamGrads(t, "attn-lstm attention", attn.Params(), forward)
	checkParamGrads(t, "attn-lstm lstm", lstm.Params(), forward)
	for s := range seq {
		for i := range seq[s] {
			orig := seq[s][i]
			seq[s][i] = orig + gcEps
			up := forward()
			seq[s][i] = orig - gcEps
			down := forward()
			seq[s][i] = orig
			numeric := (up - down) / (2 * gcEps)
			if relErr(numeric, dxs[s][i]) > gcTol {
				t.Fatalf("attn-lstm input grad [%d][%d]: analytic %v vs numeric %v", s, i, dxs[s][i], numeric)
			}
		}
	}
}

func TestBackwardSeqAllMidStepGradients(t *testing.T) {
	// Gradients injected at a middle step only must still check out.
	rng := rand.New(rand.NewSource(5))
	lstm := NewLSTM(2, 3, rng)
	seq := [][]float64{{0.3, -0.2}, {0.7, 0.1}, {-0.4, 0.6}}
	loss := newVecLoss(rng, 3)
	forward := func() float64 {
		hs := lstm.ForwardSeqAll(seq, false)
		return loss.value(hs[1]) // only the middle hidden state matters
	}
	lstm.ForwardSeqAll(seq, true)
	grads := make([][]float64, 3)
	grads[1] = loss.grad()
	dxs := lstm.BackwardSeqAll(grads)
	checkParamGrads(t, "mid-step lstm", lstm.Params(), forward)
	// Inputs after the graded step must have zero gradient.
	for i := range dxs[2] {
		if dxs[2][i] != 0 {
			t.Fatalf("future input has gradient: %v", dxs[2])
		}
	}
}
