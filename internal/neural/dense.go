package neural

import "math/rand"

// Dense is a fully-connected layer over flat vectors.
type Dense struct {
	In, Out int

	weight *Param // [out][in] flattened
	bias   *Param

	inCache []float64
}

// NewDense creates a Glorot-initialized dense layer.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{In: in, Out: out}
	d.weight = newParam(in * out)
	glorotInit(d.weight.Val, in, out, rng)
	d.bias = newParam(out)
	return d
}

// ForwardVec computes y = Wx + b.
func (d *Dense) ForwardVec(x []float64, train bool) []float64 {
	if train {
		d.inCache = x
	}
	y := make([]float64, d.Out)
	for o := 0; o < d.Out; o++ {
		sum := d.bias.Val[o]
		row := d.weight.Val[o*d.In : (o+1)*d.In]
		for i, v := range x {
			sum += row[i] * v
		}
		y[o] = sum
	}
	return y
}

// BackwardVec accumulates parameter gradients and returns dL/dx.
func (d *Dense) BackwardVec(grad []float64) []float64 {
	dx := make([]float64, d.In)
	for o := 0; o < d.Out; o++ {
		g := grad[o]
		if g == 0 {
			continue
		}
		d.bias.Grad[o] += g
		row := d.weight.Val[o*d.In : (o+1)*d.In]
		gRow := d.weight.Grad[o*d.In : (o+1)*d.In]
		for i := range row {
			gRow[i] += g * d.inCache[i]
			dx[i] += g * row[i]
		}
	}
	return dx
}

// Params returns the learnable parameters.
func (d *Dense) Params() []*Param { return []*Param{d.weight, d.bias} }

// GlobalAvgPool averages each channel over time, producing a flat vector.
type GlobalAvgPool struct {
	timePoints int
	channels   int
}

// Forward averages [channels][time] to [channels].
func (g *GlobalAvgPool) Forward(x [][]float64, train bool) []float64 {
	g.channels = len(x)
	g.timePoints = len(x[0])
	out := make([]float64, len(x))
	for c := range x {
		var sum float64
		for _, v := range x[c] {
			sum += v
		}
		out[c] = sum / float64(len(x[c]))
	}
	return out
}

// Backward spreads the gradient uniformly over time.
func (g *GlobalAvgPool) Backward(grad []float64) [][]float64 {
	dx := matrix(g.channels, g.timePoints)
	for c := 0; c < g.channels; c++ {
		share := grad[c] / float64(g.timePoints)
		for t := 0; t < g.timePoints; t++ {
			dx[c][t] = share
		}
	}
	return dx
}
