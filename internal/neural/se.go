package neural

import "math/rand"

// SqueezeExcite is the channel-attention block of Hu et al. (CVPR 2018)
// used by MLSTM-FCN: global average pooling followed by a bottleneck MLP
// with a sigmoid gate that rescales each channel.
type SqueezeExcite struct {
	Channels int

	fc1, fc2 *Dense

	// caches
	x     [][]float64
	gate  []float64
	hid   []float64
	preS  []float64
	timeN int
}

// NewSqueezeExcite creates a block with the given reduction ratio
// (bottleneck width = channels/ratio, at least 1).
func NewSqueezeExcite(channels, ratio int, rng *rand.Rand) *SqueezeExcite {
	mid := channels / ratio
	if mid < 1 {
		mid = 1
	}
	return &SqueezeExcite{
		Channels: channels,
		fc1:      NewDense(channels, mid, rng),
		fc2:      NewDense(mid, channels, rng),
	}
}

// Forward rescales channels by the learned gate.
func (s *SqueezeExcite) Forward(x [][]float64, train bool) [][]float64 {
	T := len(x[0])
	squeeze := make([]float64, s.Channels)
	for c := range x {
		var sum float64
		for _, v := range x[c] {
			sum += v
		}
		squeeze[c] = sum / float64(T)
	}
	pre := s.fc1.ForwardVec(squeeze, train)
	hid := make([]float64, len(pre))
	for i, v := range pre {
		if v > 0 {
			hid[i] = v
		}
	}
	preGate := s.fc2.ForwardVec(hid, train)
	gate := make([]float64, len(preGate))
	for i, v := range preGate {
		gate[i] = sigmoid(v)
	}
	y := matrix(s.Channels, T)
	for c := range x {
		g := gate[c]
		for t, v := range x[c] {
			y[c][t] = v * g
		}
	}
	if train {
		s.x = x
		s.gate = gate
		s.hid = hid
		s.preS = pre
		s.timeN = T
	}
	return y
}

// Backward propagates through the gate and both dense layers.
func (s *SqueezeExcite) Backward(grad [][]float64) [][]float64 {
	T := s.timeN
	dx := matrix(s.Channels, T)
	dGate := make([]float64, s.Channels)
	for c := 0; c < s.Channels; c++ {
		g := s.gate[c]
		for t := 0; t < T; t++ {
			dy := grad[c][t]
			dx[c][t] = dy * g
			dGate[c] += dy * s.x[c][t]
		}
	}
	// Through the sigmoid.
	dPreGate := make([]float64, s.Channels)
	for c := range dGate {
		dPreGate[c] = dGate[c] * s.gate[c] * (1 - s.gate[c])
	}
	dHid := s.fc2.BackwardVec(dPreGate)
	// Through the bottleneck ReLU.
	dPre := make([]float64, len(dHid))
	for i := range dHid {
		if s.preS[i] > 0 {
			dPre[i] = dHid[i]
		}
	}
	dSqueeze := s.fc1.BackwardVec(dPre)
	// Through the global average pool.
	for c := 0; c < s.Channels; c++ {
		share := dSqueeze[c] / float64(T)
		for t := 0; t < T; t++ {
			dx[c][t] += share
		}
	}
	return dx
}

// Params returns the learnable parameters of both dense layers.
func (s *SqueezeExcite) Params() []*Param {
	return append(s.fc1.Params(), s.fc2.Params()...)
}
