package neural

import (
	"math"
	"math/rand"
)

// Attention pools a sequence of hidden vectors into one context vector
// using additive (Bahdanau-style) attention with a learned scoring vector:
//
//	e_t = uᵀ tanh(W h_t + b),  a = softmax(e),  out = Σ_t a_t · h_t
//
// MLSTM-FCN's LSTM branch uses this form to attend over the
// dimension-shuffled steps instead of keeping only the final hidden state.
type Attention struct {
	Dim, Hidden int

	w *Param // [hidden][dim]
	b *Param // [hidden]
	u *Param // [hidden]

	// caches for backward
	hs     [][]float64 // input sequence
	pre    [][]float64 // W h_t + b
	tanhed [][]float64
	scores []float64 // attention weights a_t
}

// NewAttention creates an attention pool over dim-sized vectors with the
// given scoring bottleneck width.
func NewAttention(dim, hidden int, rng *rand.Rand) *Attention {
	a := &Attention{Dim: dim, Hidden: hidden}
	a.w = newParam(hidden * dim)
	glorotInit(a.w.Val, dim, hidden, rng)
	a.b = newParam(hidden)
	a.u = newParam(hidden)
	glorotInit(a.u.Val, hidden, 1, rng)
	return a
}

// ForwardSeq pools the sequence (steps × dim) into one dim-sized vector.
func (a *Attention) ForwardSeq(seq [][]float64, train bool) []float64 {
	steps := len(seq)
	pre := make([][]float64, steps)
	tanhed := make([][]float64, steps)
	energies := make([]float64, steps)
	for t, h := range seq {
		p := make([]float64, a.Hidden)
		th := make([]float64, a.Hidden)
		var e float64
		for j := 0; j < a.Hidden; j++ {
			row := a.w.Val[j*a.Dim : (j+1)*a.Dim]
			sum := a.b.Val[j]
			for i := 0; i < a.Dim && i < len(h); i++ {
				sum += row[i] * h[i]
			}
			p[j] = sum
			th[j] = math.Tanh(sum)
			e += a.u.Val[j] * th[j]
		}
		pre[t] = p
		tanhed[t] = th
		energies[t] = e
	}
	// Softmax over steps.
	max := math.Inf(-1)
	for _, e := range energies {
		if e > max {
			max = e
		}
	}
	var z float64
	scores := make([]float64, steps)
	for t, e := range energies {
		scores[t] = math.Exp(e - max)
		z += scores[t]
	}
	for t := range scores {
		scores[t] /= z
	}
	out := make([]float64, a.Dim)
	for t, h := range seq {
		s := scores[t]
		for i := 0; i < a.Dim && i < len(h); i++ {
			out[i] += s * h[i]
		}
	}
	if train {
		a.hs = seq
		a.pre = pre
		a.tanhed = tanhed
		a.scores = scores
	}
	return out
}

// Scores returns the attention weights of the last forward pass.
func (a *Attention) Scores() []float64 { return a.scores }

// BackwardSeq propagates dL/dout back to every sequence step, accumulating
// parameter gradients.
func (a *Attention) BackwardSeq(grad []float64) [][]float64 {
	steps := len(a.hs)
	dhs := make([][]float64, steps)
	// d out / d h_t (direct path) and d out / d a_t.
	dScores := make([]float64, steps)
	for t, h := range a.hs {
		dh := make([]float64, a.Dim)
		s := a.scores[t]
		var dA float64
		for i := 0; i < a.Dim && i < len(h); i++ {
			dh[i] = grad[i] * s
			dA += grad[i] * h[i]
		}
		dhs[t] = dh
		dScores[t] = dA
	}
	// Through the softmax: dE_t = a_t (dA_t - Σ_k a_k dA_k).
	var dot float64
	for t := range dScores {
		dot += a.scores[t] * dScores[t]
	}
	for t := range a.hs {
		dE := a.scores[t] * (dScores[t] - dot)
		if dE == 0 {
			continue
		}
		// e_t = Σ_j u_j tanh(pre_j); pre = W h_t + b.
		for j := 0; j < a.Hidden; j++ {
			a.u.Grad[j] += dE * a.tanhed[t][j]
			dPre := dE * a.u.Val[j] * (1 - a.tanhed[t][j]*a.tanhed[t][j])
			if dPre == 0 {
				continue
			}
			a.b.Grad[j] += dPre
			row := a.w.Val[j*a.Dim : (j+1)*a.Dim]
			gRow := a.w.Grad[j*a.Dim : (j+1)*a.Dim]
			h := a.hs[t]
			dh := dhs[t]
			for i := 0; i < a.Dim && i < len(h); i++ {
				gRow[i] += dPre * h[i]
				dh[i] += dPre * row[i]
			}
		}
	}
	return dhs
}

// Params returns the learnable parameters.
func (a *Attention) Params() []*Param { return []*Param{a.w, a.b, a.u} }
