package neural

import (
	"math"

	"github.com/goetsc/goetsc/internal/stats"
)

// SoftmaxCrossEntropy combines the softmax activation with cross-entropy
// loss; its backward pass has the simple form probs - onehot(label).
type SoftmaxCrossEntropy struct {
	probs []float64
	label int
}

// Forward returns the loss for the given logits and true label, caching
// state for Backward.
func (s *SoftmaxCrossEntropy) Forward(logits []float64, label int) float64 {
	s.probs = stats.Softmax(logits, nil)
	s.label = label
	p := s.probs[label]
	if p < 1e-15 {
		p = 1e-15
	}
	return -math.Log(p)
}

// Probs returns the cached probabilities of the last Forward call.
func (s *SoftmaxCrossEntropy) Probs() []float64 { return s.probs }

// Backward returns dL/dlogits.
func (s *SoftmaxCrossEntropy) Backward() []float64 {
	grad := append([]float64(nil), s.probs...)
	grad[s.label] -= 1
	return grad
}
