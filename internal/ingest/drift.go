package ingest

import (
	"errors"
	"fmt"
	"math"

	"github.com/goetsc/goetsc/internal/core"
)

// DriftConfig tunes the rolling-profile drift detector. The detector is
// deliberately simple — relative shifts of the same two statistics the
// paper's categorization rests on (coefficient of variation and class
// imbalance ratio), measured against a fixed reference profile — so
// that trip points are hand-computable in tests and explainable in the
// journal.
type DriftConfig struct {
	// Reference is the profile of the data the live model was trained
	// on; drift is measured relative to it. Typically
	// core.Categorize(trainSet). Leaving it zero self-calibrates: the
	// detector snapshots the rolling profile once MinWindows windows have
	// arrived and measures drift against that — for deployments where the
	// training data is gone but the stream's opening stretch is known
	// good.
	Reference core.Profile
	// Windows is the rolling-profile width in completed windows.
	// Default 32.
	Windows int
	// MinWindows delays the first evaluation until the rolling profile
	// holds this many windows, so a half-filled ring cannot trip.
	// Default Windows.
	MinWindows int
	// CoVJump is the relative CoV change versus the reference that
	// trips the detector: |cov−ref|/max(ref,1e-12) > CoVJump. 0 disables
	// the CoV test.
	CoVJump float64
	// CIRJump is the same relative test on the class imbalance ratio. 0
	// disables it.
	CIRJump float64
	// Cooldown is how many windows after a trip the detector stays
	// quiet — the retrain it triggered needs windows of post-swap data
	// before the rolling profile is meaningful again. Default Windows.
	Cooldown int
}

func (c DriftConfig) withDefaults() (DriftConfig, error) {
	if c.Windows <= 0 {
		c.Windows = 32
	}
	if c.MinWindows <= 0 {
		c.MinWindows = c.Windows
	}
	if c.Cooldown <= 0 {
		c.Cooldown = c.Windows
	}
	if c.CoVJump < 0 || c.CIRJump < 0 {
		return c, errors.New("ingest: drift jump thresholds must be non-negative")
	}
	if c.CoVJump == 0 && c.CIRJump == 0 {
		return c, errors.New("ingest: drift detector needs at least one of CoVJump/CIRJump")
	}
	return c, nil
}

// Detector trips when the rolling profile's statistics shift too far
// from the reference profile. Callers own the locking (the pipeline
// evaluates it under its drift mutex).
type Detector struct {
	cfg      DriftConfig
	observed int
	quiet    int // windows of cooldown remaining
	trips    int
	selfCal  bool // reference pending: snapshot at MinWindows
}

// NewDetector validates the config and returns a detector.
func NewDetector(cfg DriftConfig) (*Detector, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	selfCal := cfg.Reference.CoV == 0 && cfg.Reference.CIR == 0
	return &Detector{cfg: cfg, selfCal: selfCal}, nil
}

// Trips reports how many times the detector has fired.
func (d *Detector) Trips() int { return d.trips }

// Rebase re-references the detector at the given profile and restarts
// the cooldown. The pipeline calls it after a successful model swap:
// the refreshed model represents the stream's current distribution, so
// drift must be measured against that, not against the regime the
// retrain just left behind — otherwise a permanently shifted stream
// would re-trip (and retrain) every cooldown forever.
func (d *Detector) Rebase(p core.Profile) {
	d.cfg.Reference = p
	d.selfCal = false
	d.quiet = d.cfg.Cooldown
}

// Observe evaluates one completed window's rolling profile. It returns
// whether the detector tripped and, when it did, a journal-ready reason
// naming the statistic and the shift that crossed its threshold.
func (d *Detector) Observe(p core.Profile) (bool, string) {
	d.observed++
	if d.quiet > 0 {
		d.quiet--
		return false, ""
	}
	if d.observed < d.cfg.MinWindows {
		return false, ""
	}
	if d.selfCal {
		// First full profile becomes the reference; testing starts on the
		// next window.
		d.cfg.Reference, d.selfCal = p, false
		return false, ""
	}
	if d.cfg.CoVJump > 0 {
		if shift := relativeShift(p.CoV, d.cfg.Reference.CoV); shift > d.cfg.CoVJump {
			return d.trip(fmt.Sprintf("cov shifted %.3f (%.4f vs reference %.4f, threshold %.3f)",
				shift, p.CoV, d.cfg.Reference.CoV, d.cfg.CoVJump))
		}
	}
	if d.cfg.CIRJump > 0 {
		if shift := relativeShift(p.CIR, d.cfg.Reference.CIR); shift > d.cfg.CIRJump {
			return d.trip(fmt.Sprintf("cir shifted %.3f (%.4f vs reference %.4f, threshold %.3f)",
				shift, p.CIR, d.cfg.Reference.CIR, d.cfg.CIRJump))
		}
	}
	return false, ""
}

func (d *Detector) trip(why string) (bool, string) {
	d.trips++
	d.quiet = d.cfg.Cooldown
	return true, why
}

// relativeShift is |value−ref|/max(|ref|,1e-12); an infinite rolling
// statistic (zero-mean window) always reads as a full shift.
func relativeShift(value, ref float64) float64 {
	if math.IsInf(value, 0) || math.IsNaN(value) {
		return math.Inf(1)
	}
	den := math.Abs(ref)
	if den < 1e-12 {
		den = 1e-12
	}
	return math.Abs(value-ref) / den
}
