package ingest

import (
	"bufio"
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// Summary is the trailing NDJSON line of one ingest request: the
// pipeline counters for everything the stream did, marked so clients
// can tell it from a Decision line.
type Summary struct {
	Summary bool `json:"summary"`
	Stats
	ParseErrors int64 `json:"parse_errors"`
	// ReadError reports a body-stream failure (truncation, reset) that
	// ended the request early; empty on a clean EOF.
	ReadError string `json:"read_error,omitempty"`
	WallMS    int64  `json:"wall_ms"`
}

// Handler returns the POST /v1/ingest endpoint: the request body is an
// NDJSON event stream, the response an NDJSON stream of decisions as
// they fall out of the pipeline, closed by one summary line.
//
// Each request gets its own Pipeline from build — one request is one
// ingest stream, with its own entities, drift state and counters — so
// build can read per-stream options (model name, shard count) off the
// request. The onDecision sink handed to build must be wired into the
// pipeline's OnDecision. Decisions stream back with a per-line flush,
// so the handler must be mounted outside any buffering middleware
// (http.TimeoutHandler buffers whole responses — mount this on the
// root mux beside it, the way the pprof plane is).
//
// Backpressure is end to end: a full shard queue blocks Submit, Submit
// blocks the body read, and TCP flow control slows the producer.
func Handler(build func(r *http.Request, onDecision func(Decision)) (*Pipeline, error)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, `{"error":"POST required"}`, http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		// Decisions stream back while the body is still uploading. On
		// HTTP/1 the server halts body reads once the response starts
		// unless full duplex is enabled, which would silently truncate
		// the stream at the first decision; HTTP/2 duplexes natively and
		// returns ErrNotSupported, which is fine to ignore.
		_ = http.NewResponseController(w).EnableFullDuplex()
		flusher, _ := w.(http.Flusher)
		var mu sync.Mutex // decisions arrive from shard goroutines
		writeLine := func(v any) {
			mu.Lock()
			defer mu.Unlock()
			b, err := json.Marshal(v)
			if err != nil {
				return
			}
			w.Write(append(b, '\n'))
			if flusher != nil {
				flusher.Flush()
			}
		}
		p, err := build(r, func(d Decision) { writeLine(d) })
		if err != nil {
			http.Error(w, `{"error":`+strconvQuote(err.Error())+`}`, http.StatusBadRequest)
			return
		}
		defer p.Close()

		start := time.Now()
		var parseErrors int64
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var ev Event
			if err := json.Unmarshal(line, &ev); err != nil || ev.Entity == "" {
				// A damaged line poisons only itself; the stream goes on.
				parseErrors++
				continue
			}
			if err := p.Submit(ev); err != nil {
				break
			}
		}
		p.Flush()
		sum := Summary{
			Summary: true, Stats: p.Stats(),
			ParseErrors: parseErrors, WallMS: time.Since(start).Milliseconds(),
		}
		if err := sc.Err(); err != nil {
			sum.ReadError = err.Error()
		}
		writeLine(sum)
	})
}

// strconvQuote is a tiny JSON string quoter for the one pre-stream
// error path, avoiding a Marshal of a map for a fixed shape.
func strconvQuote(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
