package ingest

import (
	"fmt"

	ts "github.com/goetsc/goetsc/internal/timeseries"
)

// InterleaveInstances flattens a dataset into one interleaved event
// stream the way a live feed would deliver it: instances are processed
// in cohorts of `group` concurrent entities, and within a cohort the
// entities' points interleave round-robin by time index — entity A's
// t=0, entity B's t=0, …, entity A's t=1 — so consecutive events
// almost never belong to the same entity. Entity i is named
// "<prefix>-<i>" after its instance index, and the final event of each
// entity carries the instance's label as delayed ground truth. The
// function is pure: the same dataset yields the same stream.
func InterleaveInstances(d *ts.Dataset, prefix string, group int) []Event {
	if group <= 0 {
		group = 8
	}
	var out []Event
	for lo := 0; lo < len(d.Instances); lo += group {
		hi := lo + group
		if hi > len(d.Instances) {
			hi = len(d.Instances)
		}
		cohort := d.Instances[lo:hi]
		maxLen := 0
		for _, in := range cohort {
			if n := in.Length(); n > maxLen {
				maxLen = n
			}
		}
		for t := 0; t < maxLen; t++ {
			for j, in := range cohort {
				if t >= in.Length() {
					continue
				}
				ev := Event{
					Entity: fmt.Sprintf("%s-%d", prefix, lo+j),
					T:      t,
					Values: pointAt(in, t),
				}
				if t == in.Length()-1 {
					ev.Label, ev.Labeled = in.Label, true
				}
				out = append(out, ev)
			}
		}
	}
	return out
}

// pointAt copies one time slice of an instance — the event owns its
// values, so a consumer may retain them.
func pointAt(in ts.Instance, t int) []float64 {
	vals := make([]float64, len(in.Values))
	for v := range in.Values {
		vals[v] = in.Values[v][t]
	}
	return vals
}
