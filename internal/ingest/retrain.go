package ingest

import (
	"errors"
	"fmt"
	"time"

	"github.com/goetsc/goetsc/internal/core"
	"github.com/goetsc/goetsc/internal/persist"
	ts "github.com/goetsc/goetsc/internal/timeseries"
)

// RetrainConfig wires a drift trip to a model refresh: fit a fresh
// classifier on the recent labeled windows and swap it into the
// registry. A retrain that fails — fit error, panic, or swap rejection
// — changes nothing: the old version keeps serving, the failure is
// journaled, and the detector's cooldown schedules the next attempt.
type RetrainConfig struct {
	// Fit trains a fresh classifier on the recent labeled windows.
	// Required. It runs off the hot path (or inline under Synchronous)
	// and must not retain d.
	Fit func(d *ts.Dataset) (core.EarlyClassifier, error)
	// MinInstances is the labeled-window floor below which a trip is
	// journaled but no retrain runs. Default 8.
	MinInstances int
	// BufferSize bounds the labeled-window ring the retrainer learns
	// from — the per-pipeline memory cap for ground truth. Default 256.
	BufferSize int
	// Synchronous runs the retrain inline on the window-completing
	// shard's goroutine instead of a background goroutine — the
	// deterministic mode chaos tests run with Shards=1, where every
	// window after the trip is guaranteed to see the swapped model.
	Synchronous bool
}

func (c *RetrainConfig) validate() error {
	if c.Fit == nil {
		return errors.New("ingest: RetrainConfig.Fit is required")
	}
	if c.MinInstances <= 0 {
		c.MinInstances = 8
	}
	if c.BufferSize <= 0 {
		c.BufferSize = 256
	}
	return nil
}

// labeledBuffer is a bounded ring of ground-truth windows — the
// retrainer's training set, oldest displaced first.
type labeledBuffer struct {
	ring []ts.Instance
	next int
	n    int
}

func newLabeledBuffer(size int) *labeledBuffer {
	return &labeledBuffer{ring: make([]ts.Instance, size)}
}

func (b *labeledBuffer) add(in ts.Instance) {
	b.ring[b.next] = in
	b.next = (b.next + 1) % len(b.ring)
	if b.n < len(b.ring) {
		b.n++
	}
}

// snapshot copies the buffered instances oldest-first. The instances
// themselves are already owned copies (copyInstance), so the training
// set cannot alias a live window buffer.
func (b *labeledBuffer) snapshot() []ts.Instance {
	out := make([]ts.Instance, 0, b.n)
	start := b.next - b.n
	if start < 0 {
		start += len(b.ring)
	}
	for i := 0; i < b.n; i++ {
		out = append(out, b.ring[(start+i)%len(b.ring)])
	}
	return out
}

// maybeRetrain launches one retrain for a drift trip. At most one
// retrain runs at a time; a trip landing while one is in flight is
// journaled and skipped — its drift, if real, trips again after the
// cooldown.
func (p *Pipeline) maybeRetrain(why string) {
	rc := p.cfg.Retrain
	if rc == nil {
		return
	}
	if !p.retraining.CompareAndSwap(false, true) {
		p.cfg.Obs.Emit("retrain_skipped", map[string]any{
			"model": p.cfg.Model, "reason": "retrain already in flight",
		})
		return
	}
	p.driftMu.Lock()
	instances := p.buffer.snapshot()
	p.driftMu.Unlock()
	if len(instances) < rc.MinInstances {
		p.retraining.Store(false)
		p.cfg.Obs.Emit("retrain_skipped", map[string]any{
			"model": p.cfg.Model,
			"reason": fmt.Sprintf("%d labeled windows buffered, need %d",
				len(instances), rc.MinInstances),
		})
		return
	}
	p.retrainWG.Add(1)
	if rc.Synchronous {
		p.retrain(instances, why)
	} else {
		go p.retrain(instances, why)
	}
}

// retrain fits on the labeled windows and swaps the result in. All
// failure paths leave the live version serving.
func (p *Pipeline) retrain(instances []ts.Instance, why string) {
	defer p.retrainWG.Done()
	defer p.retraining.Store(false)
	p.stats.retrains.Add(1)
	p.cfg.Obs.Emit("retrain_started", map[string]any{
		"model": p.cfg.Model, "instances": len(instances), "trigger": why,
	})
	start := time.Now()
	d := &ts.Dataset{Name: p.cfg.Model + "-retrain", Instances: instances}
	algo, err := p.fit(d)
	if err != nil {
		p.stats.retrainFail.Add(1)
		p.cfg.Obs.Emit("retrain_failed", map[string]any{
			"model": p.cfg.Model, "error": err.Error(),
		})
		return
	}
	meta := persist.Meta{
		Algorithm: algo.Name(), Dataset: d.Name,
		Length: d.MaxLength(), NumVars: d.NumVars(), NumClasses: d.NumClasses(),
	}
	version, err := p.cfg.Registry.SwapModel(p.cfg.Model, algo, meta)
	if err != nil {
		p.stats.retrainFail.Add(1)
		p.cfg.Obs.Emit("retrain_failed", map[string]any{
			"model": p.cfg.Model, "error": err.Error(),
		})
		return
	}
	p.stats.swaps.Add(1)
	p.driftMu.Lock()
	if p.detector != nil {
		// The swapped model serves the current distribution; measure
		// future drift against it. Still-mixed rolling windows can shift a
		// little further and re-trip once — the next retrain then sees a
		// fully post-drift buffer and the reference settles.
		p.detector.Rebase(p.profile.Profile())
	}
	p.driftMu.Unlock()
	p.cfg.Obs.Emit("retrain_succeeded", map[string]any{
		"model": p.cfg.Model, "version": version, "instances": len(instances),
		"wall_ms": time.Since(start).Milliseconds(),
	})
}

// fit runs the user's Fit with panics contained — a training crash is a
// failed retrain, not a dead pipeline.
func (p *Pipeline) fit(d *ts.Dataset) (algo core.EarlyClassifier, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			algo, err = nil, fmt.Errorf("ingest: fit panicked: %v", rec)
		}
	}()
	algo, err = p.cfg.Retrain.Fit(d)
	if err == nil && algo == nil {
		err = errors.New("ingest: fit returned no classifier")
	}
	return algo, err
}
