// End-to-end chaos for the continuous-ingest subsystem, run against the
// real serving registry (external test package: serve imports ingest).
// The deterministic levers: Shards=1 processes the stream in arrival
// order, Synchronous retrains complete before the next window opens,
// and the drifting stream is a seeded synthetic regime change.
package ingest_test

import (
	"errors"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/goetsc/goetsc/internal/bench"
	"github.com/goetsc/goetsc/internal/core"
	"github.com/goetsc/goetsc/internal/faults"
	"github.com/goetsc/goetsc/internal/ingest"
	"github.com/goetsc/goetsc/internal/persist"
	"github.com/goetsc/goetsc/internal/serve"
	"github.com/goetsc/goetsc/internal/synth"
	ts "github.com/goetsc/goetsc/internal/timeseries"
)

func fitECTS(t *testing.T, d *ts.Dataset) core.EarlyClassifier {
	t.Helper()
	algo, err := trainECTS(d)
	if err != nil {
		t.Fatalf("fit on %s: %v", d.Name, err)
	}
	return algo
}

func trainECTS(d *ts.Dataset) (core.EarlyClassifier, error) {
	fs := bench.AlgorithmsByName(d.Name, bench.Fast, 1, []string{"ECTS"})
	if len(fs) != 1 {
		return nil, errors.New("ECTS factory not found")
	}
	algo := core.WrapForDataset(fs[0].New, d)
	if err := algo.Fit(d); err != nil {
		return nil, err
	}
	return algo, nil
}

func newRegistryServer(t *testing.T, train *ts.Dataset) (*serve.Server, core.EarlyClassifier) {
	t.Helper()
	base := fitECTS(t, train)
	srv := serve.New(serve.Config{})
	t.Cleanup(srv.Close)
	meta := persist.Meta{Dataset: train.Name, Length: train.MaxLength(),
		NumVars: train.NumVars(), NumClasses: train.NumClasses()}
	if err := srv.AddModel("live", base, meta); err != nil {
		t.Fatal(err)
	}
	return srv, base
}

type decisions struct {
	mu sync.Mutex
	ds []ingest.Decision
}

func (c *decisions) add(d ingest.Decision) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ds = append(c.ds, d)
}

// instanceOf maps a decision's entity back to the dataset instance it
// streamed from ("pre-7" → pre.Instances[7]).
func instanceOf(t *testing.T, pre, post *ts.Dataset, entity string) (ts.Instance, bool) {
	t.Helper()
	i := strings.LastIndexByte(entity, '-')
	idx, err := strconv.Atoi(entity[i+1:])
	if err != nil {
		t.Fatalf("bad entity %q", entity)
	}
	if strings.HasPrefix(entity, "pre-") {
		return pre.Instances[idx], false
	}
	return post.Instances[idx], true
}

// TestIngestChaosDriftRetrainSwap is the full online-adaptation loop on
// a deterministic regime change: the stream opens on the regime the
// model trained on, switches regimes, the detector trips on the rolling
// CoV shift, a synchronous retrain fits on the recent labeled windows,
// the registry hot-swaps — and every decision along the way is
// bit-identical to an offline Classify by the exact version its window
// pinned.
func TestIngestChaosDriftRetrainSwap(t *testing.T) {
	train := synth.RegimeDataset("regime", 1, 2, 32, 30, 7, 0)
	srv, base := newRegistryServer(t, train)

	var fitMu sync.Mutex
	var fitted []core.EarlyClassifier // fitted[k] serves as version 2+k
	var fitWall time.Duration
	var got decisions
	p, err := ingest.New(ingest.Config{
		Registry: srv, Model: "live", Shards: 1, OnDecision: got.add,
		Drift: &ingest.DriftConfig{
			Reference: core.Categorize(train),
			Windows:   8, MinWindows: 8, Cooldown: 4, CoVJump: 0.25,
		},
		Retrain: &ingest.RetrainConfig{
			Synchronous: true, MinInstances: 6, BufferSize: 8,
			Fit: func(d *ts.Dataset) (core.EarlyClassifier, error) {
				start := time.Now()
				algo, err := trainECTS(d)
				if err != nil {
					return nil, err
				}
				fitMu.Lock()
				fitted = append(fitted, algo)
				fitWall += time.Since(start)
				fitMu.Unlock()
				return algo, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	pre := synth.RegimeDataset("pre", 1, 2, 40, 30, 8, 0)
	post := synth.RegimeDataset("post", 1, 2, 48, 30, 9, 1)
	events := append(ingest.InterleaveInstances(pre, "pre", 4),
		ingest.InterleaveInstances(post, "post", 4)...)
	for _, ev := range events {
		if err := p.Submit(ev); err != nil {
			t.Fatal(err)
		}
	}
	p.Flush()
	st := p.Stats()

	wantWindows := int64(pre.Len() + post.Len())
	if st.Windows != wantWindows || st.Decisions != wantWindows {
		t.Fatalf("windows/decisions = %d/%d, want %d each", st.Windows, st.Decisions, wantWindows)
	}
	if st.DriftTrips < 1 {
		t.Fatalf("drift never tripped: %+v", st)
	}
	if st.Retrains < 1 || st.Swaps < 1 {
		t.Fatalf("retrains/swaps = %d/%d, want at least one each", st.Retrains, st.Swaps)
	}
	if st.RetrainFailures != 0 {
		t.Fatalf("retrain failures = %d, want 0", st.RetrainFailures)
	}

	// Every decision must be bit-identical to offline Classify by its
	// pinned version. Version 1 is the base model; version 1+k is the kth
	// retrained classifier.
	byVersion := map[int]core.EarlyClassifier{1: base}
	for k, algo := range fitted {
		byVersion[2+k] = algo
	}
	maxVersion := 1
	var v1Post, finalPost, v1PostCorrect, finalPostCorrect int
	for _, d := range got.ds {
		if d.Version > maxVersion {
			maxVersion = d.Version
		}
	}
	for _, d := range got.ds {
		algo := byVersion[d.Version]
		if algo == nil {
			t.Fatalf("decision by unknown version %d", d.Version)
		}
		in, isPost := instanceOf(t, pre, post, d.Entity)
		wantLabel, wantConsumed := algo.Classify(in)
		if d.Label != wantLabel || d.Consumed != wantConsumed {
			t.Fatalf("decision %s/w%d v%d = (%d,%d), offline Classify = (%d,%d)",
				d.Entity, d.Window, d.Version, d.Label, d.Consumed, wantLabel, wantConsumed)
		}
		if !isPost {
			continue
		}
		correct := d.Label == in.Label
		switch d.Version {
		case 1:
			v1Post++
			if correct {
				v1PostCorrect++
			}
		case maxVersion:
			finalPost++
			if correct {
				finalPostCorrect++
			}
		}
	}
	// Detection lag is real: some post-regime windows were decided by the
	// stale version before the swap.
	if v1Post < 4 {
		t.Fatalf("only %d post-regime windows decided by v1 — detection fired implausibly early", v1Post)
	}
	if finalPost < 4 {
		t.Fatalf("only %d post-regime windows decided by the final version %d", finalPost, maxVersion)
	}
	staleAcc := float64(v1PostCorrect) / float64(v1Post)
	finalAcc := float64(finalPostCorrect) / float64(finalPost)
	if finalAcc < 0.75 {
		t.Errorf("post-swap accuracy %.2f (%d/%d) below 0.75", finalAcc, finalPostCorrect, finalPost)
	}
	if finalAcc <= staleAcc {
		t.Errorf("post-swap accuracy %.2f did not recover over the stale model's %.2f", finalAcc, staleAcc)
	}
	t.Logf("trips=%d retrains=%d swaps=%d final_version=%d stale_acc=%.2f (%d windows) recovered_acc=%.2f (%d windows) retrain_fit=%s",
		st.DriftTrips, st.Retrains, st.Swaps, maxVersion, staleAcc, v1Post, finalAcc, finalPost, fitWall.Round(time.Microsecond))
}

// TestIngestChaosRetrainFailureKeepsServing: every failure mode of the
// retrainer — a Fit error and a Fit panic — must leave the old version
// serving every subsequent window, with the failure counted.
func TestIngestChaosRetrainFailureKeepsServing(t *testing.T) {
	train := synth.RegimeDataset("regime", 1, 2, 32, 30, 7, 0)
	srv, _ := newRegistryServer(t, train)

	calls := 0
	var got decisions
	p, err := ingest.New(ingest.Config{
		Registry: srv, Model: "live", Shards: 1, OnDecision: got.add,
		Drift: &ingest.DriftConfig{
			Reference: core.Categorize(train),
			Windows:   8, MinWindows: 8, Cooldown: 4, CoVJump: 0.25,
		},
		Retrain: &ingest.RetrainConfig{
			Synchronous: true, MinInstances: 6, BufferSize: 8,
			Fit: func(d *ts.Dataset) (core.EarlyClassifier, error) {
				calls++
				if calls == 1 {
					panic("training node lost")
				}
				return nil, errors.New("training infrastructure down")
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	pre := synth.RegimeDataset("pre", 1, 2, 40, 30, 8, 0)
	post := synth.RegimeDataset("post", 1, 2, 48, 30, 9, 1)
	for _, ev := range append(ingest.InterleaveInstances(pre, "pre", 4),
		ingest.InterleaveInstances(post, "post", 4)...) {
		if err := p.Submit(ev); err != nil {
			t.Fatal(err)
		}
	}
	p.Flush()
	st := p.Stats()
	if st.DriftTrips < 1 || st.Retrains < 1 {
		t.Fatalf("drift/retrain never fired: %+v", st)
	}
	if st.RetrainFailures != st.Retrains {
		t.Errorf("retrain failures = %d, want every attempt (%d) to fail", st.RetrainFailures, st.Retrains)
	}
	if st.Swaps != 0 {
		t.Errorf("swaps = %d after failed retrains, want 0", st.Swaps)
	}
	if st.Decisions != int64(pre.Len()+post.Len()) {
		t.Errorf("decisions = %d, want %d — failed retrains must not stall the stream", st.Decisions, pre.Len()+post.Len())
	}
	for _, d := range got.ds {
		if d.Version != 1 {
			t.Fatalf("decision %s/w%d on version %d after failed retrains, want 1", d.Entity, d.Window, d.Version)
		}
	}
	pin, err := srv.Pin("live")
	if err != nil {
		t.Fatal(err)
	}
	if pin.Version != 1 {
		t.Errorf("registry serves version %d after failed retrains, want 1", pin.Version)
	}
}

// prefixCursor decides exactly when the full window is visible — the
// deterministic classifier for counter-exact fault tests.
type prefixCursor struct{ at int }

func (c prefixCursor) Advance(upto int) (label, consumed int, done bool) {
	if upto >= c.at {
		return 1, c.at, true
	}
	return -1, upto, false
}

// stubRegistry pins a fixed-version model of prefixCursors.
type stubRegistry struct{ length, nvars int }

func (r stubRegistry) Pin(name string) (ingest.Pinned, error) {
	return ingest.Pinned{
		Name: name, Version: 1, Length: r.length, NumVars: r.nvars, NumClasses: 2,
		Begin: func(in ts.Instance) core.Cursor { return prefixCursor{at: r.length} },
	}, nil
}

func (r stubRegistry) SwapModel(string, core.EarlyClassifier, persist.Meta) (int, error) {
	return 0, errors.New("stub registry does not swap")
}

// TestIngestEventFaultScheduleAbsorbed replays a stream through a
// seeded fault plan — drops, duplicates, late redeliveries — and checks
// the pipeline's counters match a reference simulation of its
// accept/reject rule exactly: duplicates and stale redeliveries are
// counted late and change nothing, drops just shorten windows.
func TestIngestEventFaultScheduleAbsorbed(t *testing.T) {
	const window = 20
	clean := ingest.InterleaveInstances(synth.Dataset("faulted", 1, 2, 24, window, 5), "f", 6)
	plan := faults.NewEventPlan(faults.EventConfig{
		Seed: 99, DropProb: 0.05, DupProb: 0.05, LateProb: 0.05, LateBy: 12,
	})
	kinds := map[faults.EventKind]int{}
	for _, ev := range clean {
		kinds[plan.For(ev.Entity, ev.T)]++
	}
	for _, k := range []faults.EventKind{faults.EventDrop, faults.EventDup, faults.EventLate} {
		if kinds[k] == 0 {
			t.Fatalf("seed plants no %v faults — pick a different seed", k)
		}
	}
	faulted := plan.Apply(clean)

	// Reference simulation of the pipeline's accept/reject rule.
	type simEnt struct {
		lastT, n int
		started  bool
	}
	ents := map[string]*simEnt{}
	var simLate, simWindows int64
	for _, ev := range faulted {
		e := ents[ev.Entity]
		if e == nil {
			e = &simEnt{lastT: -1}
			ents[ev.Entity] = e
		}
		if ev.T <= e.lastT && e.started {
			simLate++
			continue
		}
		e.lastT = ev.T
		e.n++
		e.started = true
		if e.n >= window {
			simWindows++
			e.n, e.started = 0, false
		}
	}

	p, err := ingest.New(ingest.Config{
		Registry: stubRegistry{length: window, nvars: 1}, Model: "m", Shards: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for _, ev := range faulted {
		if err := p.Submit(ev); err != nil {
			t.Fatal(err)
		}
	}
	p.Flush()
	st := p.Stats()
	if st.Events != int64(len(faulted)) {
		t.Errorf("events = %d, want %d", st.Events, len(faulted))
	}
	if st.Late != simLate {
		t.Errorf("late = %d, reference simulation says %d", st.Late, simLate)
	}
	if st.Windows != simWindows {
		t.Errorf("windows = %d, reference simulation says %d", st.Windows, simWindows)
	}
	// The deciding cursor commits exactly at the full window.
	if st.Decisions != simWindows {
		t.Errorf("decisions = %d, want one per completed window (%d)", st.Decisions, simWindows)
	}
	if st.Malformed != 0 {
		t.Errorf("malformed = %d, want 0", st.Malformed)
	}
	t.Logf("faults planned: %d drops, %d dups, %d late → %d events in, %d late-dropped, %d/%d windows completed",
		kinds[faults.EventDrop], kinds[faults.EventDup], kinds[faults.EventLate],
		len(faulted), st.Late, st.Windows, len(clean)/window)
}
