package ingest

import (
	"reflect"
	"testing"

	"github.com/goetsc/goetsc/internal/synth"
	ts "github.com/goetsc/goetsc/internal/timeseries"
)

func TestInterleaveInstancesDeterministic(t *testing.T) {
	d := synth.Dataset("interleave", 2, 2, 10, 12, 21)
	a := InterleaveInstances(d, "e", 4)
	b := InterleaveInstances(synth.Dataset("interleave", 2, 2, 10, 12, 21), "e", 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same dataset produced different event streams")
	}
	wantEvents := 0
	for _, in := range d.Instances {
		wantEvents += in.Length()
	}
	if len(a) != wantEvents {
		t.Fatalf("stream has %d events, want one per point = %d", len(a), wantEvents)
	}
}

// TestInterleaveInstancesOrderAndLabels pins the cohort round-robin
// order on a tiny dataset and checks exactly the final event of each
// entity carries the instance's label.
func TestInterleaveInstancesOrderAndLabels(t *testing.T) {
	d := &ts.Dataset{Name: "tiny", Instances: []ts.Instance{
		{Label: 3, Values: [][]float64{{10, 11}}},
		{Label: 4, Values: [][]float64{{20, 21}}},
	}}
	got := InterleaveInstances(d, "x", 2)
	want := []Event{
		{Entity: "x-0", T: 0, Values: []float64{10}},
		{Entity: "x-1", T: 0, Values: []float64{20}},
		{Entity: "x-0", T: 1, Values: []float64{11}, Label: 3, Labeled: true},
		{Entity: "x-1", T: 1, Values: []float64{21}, Label: 4, Labeled: true},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stream = %+v\nwant %+v", got, want)
	}
}

// TestInterleaveReassemblesToInstances: regrouping a stream by entity
// must reproduce every instance's values and label exactly — the
// property that makes streamed decisions comparable to offline ones.
func TestInterleaveReassemblesToInstances(t *testing.T) {
	d := synth.Dataset("reassemble", 2, 3, 9, 15, 33)
	events := InterleaveInstances(d, "r", 4)
	type acc struct {
		values [][]float64
		label  int
	}
	byEntity := map[string]*acc{}
	for _, ev := range events {
		a := byEntity[ev.Entity]
		if a == nil {
			a = &acc{values: make([][]float64, len(ev.Values))}
			byEntity[ev.Entity] = a
		}
		for v, x := range ev.Values {
			a.values[v] = append(a.values[v], x)
		}
		if ev.Labeled {
			a.label = ev.Label
		}
	}
	if len(byEntity) != d.Len() {
		t.Fatalf("%d entities, want %d", len(byEntity), d.Len())
	}
	for i, in := range d.Instances {
		a := byEntity["r-"+itoa(i)]
		if a == nil {
			t.Fatalf("entity r-%d missing", i)
		}
		if !reflect.DeepEqual(a.values, in.Values) {
			t.Errorf("entity r-%d values differ from instance", i)
		}
		if a.label != in.Label {
			t.Errorf("entity r-%d label = %d, want %d", i, a.label, in.Label)
		}
	}
}
