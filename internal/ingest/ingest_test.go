package ingest

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/goetsc/goetsc/internal/core"
	"github.com/goetsc/goetsc/internal/persist"
	"github.com/goetsc/goetsc/internal/testenv"
	ts "github.com/goetsc/goetsc/internal/timeseries"
)

// fakeCursor decides at a fixed prefix length with a fixed label — the
// label is the model version that built it, so a decision's Label field
// directly witnesses which version the window ran on.
type fakeCursor struct {
	decideAt int
	label    int
}

func (c *fakeCursor) Advance(upto int) (label, consumed int, done bool) {
	if upto >= c.decideAt {
		return c.label, c.decideAt, true
	}
	return -1, upto, false
}

// fakeRegistry is an in-memory Registry whose cursors label every
// window with the version that pinned them.
type fakeRegistry struct {
	mu       sync.Mutex
	version  int
	length   int
	nvars    int
	decideAt int
	swapErr  error
	swaps    int
}

func newFakeRegistry(length, nvars, decideAt int) *fakeRegistry {
	return &fakeRegistry{version: 1, length: length, nvars: nvars, decideAt: decideAt}
}

func (r *fakeRegistry) Pin(name string) (Pinned, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.version
	at := r.decideAt
	return Pinned{
		Name: name, Version: v, Length: r.length, NumVars: r.nvars, NumClasses: 2,
		Begin: func(in ts.Instance) core.Cursor { return &fakeCursor{decideAt: at, label: v} },
	}, nil
}

func (r *fakeRegistry) SwapModel(name string, algo core.EarlyClassifier, meta persist.Meta) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.swapErr != nil {
		return 0, r.swapErr
	}
	r.version++
	r.swaps++
	return r.version, nil
}

// collect gathers decisions in arrival order (Shards=1 makes the order
// deterministic).
type collect struct {
	mu sync.Mutex
	ds []Decision
}

func (c *collect) add(d Decision) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ds = append(c.ds, d)
}

func (c *collect) all() []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Decision(nil), c.ds...)
}

func point(entity string, t int, v float64) Event {
	return Event{Entity: entity, T: t, Values: []float64{v}}
}

func TestIngestWindowRollAndDecisions(t *testing.T) {
	reg := newFakeRegistry(4, 1, 2)
	var got collect
	p, err := New(Config{Registry: reg, Model: "m", Shards: 1, OnDecision: got.add})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Two full windows for one entity: the decision fires at the cursor's
	// decideAt prefix, the window rolls at WindowLength, and the second
	// window starts counting its ordinal and time from its own first event.
	for i := 0; i < 8; i++ {
		if err := p.Submit(point("a", i, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	p.Flush()
	st := p.Stats()
	if st.Events != 8 || st.Windows != 2 || st.Decisions != 2 {
		t.Fatalf("stats = %+v, want 8 events, 2 windows, 2 decisions", st)
	}
	ds := got.all()
	if len(ds) != 2 {
		t.Fatalf("got %d decisions, want 2", len(ds))
	}
	for i, d := range ds {
		want := Decision{Entity: "a", Window: i, Label: 1, Consumed: 2, Length: 2, Model: "m", Version: 1}
		if d != want {
			t.Errorf("decision[%d] = %+v, want %+v", i, d, want)
		}
	}
}

func TestIngestLateDuplicateMalformedCounters(t *testing.T) {
	reg := newFakeRegistry(4, 1, 4)
	p, err := New(Config{Registry: reg, Model: "m", Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	must := func(ev Event) {
		t.Helper()
		if err := p.Submit(ev); err != nil {
			t.Fatal(err)
		}
	}
	must(point("a", 0, 1))
	must(point("a", 1, 2))
	must(point("a", 1, 2))                                  // duplicate: same T again
	must(point("a", 0, 9))                                  // late: T went backwards
	must(Event{Entity: "a", T: 2, Values: []float64{1, 2}}) // malformed: two vars on a 1-var model
	must(point("a", 2, 3))
	p.Flush()
	st := p.Stats()
	if st.Events != 6 {
		t.Errorf("events = %d, want 6", st.Events)
	}
	if st.Late != 2 {
		t.Errorf("late = %d, want 2 (one duplicate + one backwards)", st.Late)
	}
	if st.Malformed != 1 {
		t.Errorf("malformed = %d, want 1", st.Malformed)
	}
}

func TestIngestShedAtMaxEntities(t *testing.T) {
	reg := newFakeRegistry(4, 1, 4)
	p, err := New(Config{Registry: reg, Model: "m", Shards: 1, MaxEntities: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for _, entity := range []string{"a", "b", "c", "c"} {
		if err := p.Submit(point(entity, 0, 1)); err != nil {
			t.Fatal(err)
		}
	}
	p.Flush()
	st := p.Stats()
	if st.EntitiesCreated != 2 || st.EntitiesLive != 2 {
		t.Errorf("created/live = %d/%d, want 2/2", st.EntitiesCreated, st.EntitiesLive)
	}
	if st.Shed != 2 {
		t.Errorf("shed = %d, want 2 (both events of the third entity)", st.Shed)
	}
}

// fakeClock is a mutable evict.Clock shared across the test.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestIngestEvictionByInjectedClock(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	reg := newFakeRegistry(4, 1, 4)
	p, err := New(Config{
		Registry: reg, Model: "m", Shards: 2,
		EntityTTL: time.Minute, Clock: clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Submit(point("a", 0, 1))
	p.Submit(point("b", 0, 1))
	p.Flush()
	clk.advance(30 * time.Second)
	p.Submit(point("b", 1, 2)) // refresh b's lastSeen
	p.Flush()
	if n := p.EvictIdle(); n != 0 {
		t.Fatalf("evicted %d before TTL, want 0", n)
	}
	clk.advance(45 * time.Second) // a idle 75s > TTL, b idle 45s < TTL
	if n := p.EvictIdle(); n != 1 {
		t.Fatalf("evicted %d, want exactly the idle entity", n)
	}
	st := p.Stats()
	if st.EntitiesEvicted != 1 || st.EntitiesLive != 1 {
		t.Errorf("evicted/live = %d/%d, want 1/1", st.EntitiesEvicted, st.EntitiesLive)
	}
	// The evicted entity restarts from a fresh window on its next event.
	p.Submit(point("a", 0, 1))
	p.Flush()
	if st := p.Stats(); st.EntitiesCreated != 3 || st.EntitiesLive != 2 {
		t.Errorf("created/live after return = %d/%d, want 3/2", st.EntitiesCreated, st.EntitiesLive)
	}
}

func TestIngestPinsVersionAcrossSwap(t *testing.T) {
	reg := newFakeRegistry(4, 1, 4) // decide only on the full window
	var got collect
	p, err := New(Config{Registry: reg, Model: "m", Shards: 1, OnDecision: got.add})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Open the window on v1, swap mid-window, finish the window: the
	// decision must still be v1's. The next window re-pins and sees v2.
	p.Submit(point("a", 0, 1))
	p.Submit(point("a", 1, 2))
	p.Flush()
	if _, err := reg.SwapModel("m", nil, persist.Meta{}); err != nil {
		t.Fatal(err)
	}
	for i := 2; i < 8; i++ {
		p.Submit(point("a", i, float64(i)))
	}
	p.Flush()
	ds := got.all()
	if len(ds) != 2 {
		t.Fatalf("got %d decisions, want 2", len(ds))
	}
	if ds[0].Version != 1 || ds[0].Label != 1 {
		t.Errorf("pre-swap window decided by version %d label %d, want pinned v1", ds[0].Version, ds[0].Label)
	}
	if ds[1].Version != 2 || ds[1].Label != 2 {
		t.Errorf("post-swap window decided by version %d label %d, want v2", ds[1].Version, ds[1].Label)
	}
}

func TestIngestBackpressureBlocksSubmit(t *testing.T) {
	reg := newFakeRegistry(4, 1, 4)
	p, err := New(Config{Registry: reg, Model: "m", Shards: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Park the shard goroutine on a control message, fill the queue, and
	// check the next Submit blocks until the shard is released.
	hold := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	p.shards[0].queue <- shardMsg{ctl: func(*shard) { <-hold }, done: &wg}
	p.Submit(point("a", 0, 1)) // fills the depth-1 queue

	unblocked := make(chan struct{})
	go func() {
		p.Submit(point("a", 1, 2))
		close(unblocked)
	}()
	select {
	case <-unblocked:
		t.Fatal("Submit returned while the shard queue was full — no backpressure")
	case <-time.After(50 * time.Millisecond):
	}
	close(hold)
	select {
	case <-unblocked:
	case <-time.After(2 * time.Second):
		t.Fatal("Submit never unblocked after the shard drained")
	}
	wg.Wait()
}

func TestIngestHandlerStreamsDecisionsAndSummary(t *testing.T) {
	reg := newFakeRegistry(3, 1, 2)
	h := Handler(func(r *http.Request, onDecision func(Decision)) (*Pipeline, error) {
		return New(Config{Registry: reg, Model: "m", Shards: 1, OnDecision: onDecision})
	})
	hs := httptest.NewServer(h)
	defer hs.Close()

	var body strings.Builder
	for i := 0; i < 3; i++ {
		fmt.Fprintf(&body, `{"entity":"a","t":%d,"values":[%d]}`+"\n", i, i)
	}
	body.WriteString("this is not json\n")
	for i := 0; i < 3; i++ {
		fmt.Fprintf(&body, `{"entity":"b","t":%d,"values":[%d]}`+"\n", i, i)
	}
	resp, err := http.Post(hs.URL, "application/x-ndjson", strings.NewReader(body.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var decisions []Decision
	var summary *Summary
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var probe struct {
			Summary bool `json:"summary"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad response line %q: %v", sc.Text(), err)
		}
		if probe.Summary {
			summary = &Summary{}
			if err := json.Unmarshal(sc.Bytes(), summary); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var d Decision
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatal(err)
		}
		decisions = append(decisions, d)
	}
	if len(decisions) != 2 {
		t.Fatalf("got %d decision lines, want one per entity window", len(decisions))
	}
	if summary == nil {
		t.Fatal("no trailing summary line")
	}
	if summary.ParseErrors != 1 {
		t.Errorf("parse_errors = %d, want 1", summary.ParseErrors)
	}
	if summary.Events != 6 || summary.Windows != 2 || summary.Decisions != 2 {
		t.Errorf("summary stats = %+v, want 6 events / 2 windows / 2 decisions", summary.Stats)
	}

	// Non-POST is rejected.
	get, err := http.Get(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", get.StatusCode)
	}
}

// TestIngestBoundedMemoryManyEntities is the per-entity memory gate: at
// 10k live entities, steady-state windowing must reuse the per-entity
// buffers — heap growth from one full round of windows to the next must
// be a small fraction of the footprint of the first round.
func TestIngestBoundedMemoryManyEntities(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("memory gate is meaningless under -race instrumentation")
	}
	if testing.Short() {
		t.Skip("10k-entity sweep in -short mode")
	}
	const entities = 10_000
	const window = 16
	reg := newFakeRegistry(window, 1, window)
	p, err := New(Config{Registry: reg, Model: "m", Shards: 4, MaxEntities: entities})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	round := func(base int) {
		for tt := 0; tt < window; tt++ {
			for e := 0; e < entities; e++ {
				p.Submit(Event{Entity: "e" + itoa(e), T: base + tt, Values: []float64{float64(tt)}})
			}
		}
		p.Flush()
	}
	heap := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}

	before := heap()
	round(0) // allocates every entity's window buffers once
	afterFirst := heap()
	round(window) // steady state: same entities, buffers reused
	afterSecond := heap()

	st := p.Stats()
	if st.EntitiesLive != entities || st.Windows != 2*entities {
		t.Fatalf("live=%d windows=%d, want %d live and %d windows", st.EntitiesLive, st.Windows, entities, 2*entities)
	}
	firstRound := int64(afterFirst) - int64(before)
	secondRound := int64(afterSecond) - int64(afterFirst)
	if firstRound <= 0 {
		t.Skipf("first round measured %d bytes — GC noise swamped the gate", firstRound)
	}
	if secondRound > firstRound/4 {
		t.Errorf("steady-state round grew the heap %d bytes vs %d for the first round — per-entity buffers are not being reused", secondRound, firstRound)
	}
}

// itoa avoids fmt in the 160k-submit hot loop of the memory gate.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
