package ingest

import (
	"math"

	"github.com/goetsc/goetsc/internal/core"
)

// WindowStats summarizes one completed window for the rolling profile:
// the one-pass sums stats.MeanStd is built on, so an aggregate over
// windows reproduces the batch coefficient of variation, plus the shape
// and (when ground truth arrived) the window's label.
type WindowStats struct {
	Sum, SumSq float64
	Count      int
	Length     int
	NumVars    int
	Label      int
	Labeled    bool
}

// RollingProfile maintains core.Categorize's summary statistics
// incrementally over the last W completed windows, treating each window
// as one instance of a sliding dataset. Profile() carries exactly the
// category flags a batch Categorize of the same windows would, because
// both feed core.ProfileFromStats: CoV comes from the same
// sum/sum-of-squares formula stats.MeanStd uses, CIR from the same
// most/least-populated-class ratio over the windows' labels.
type RollingProfile struct {
	name string
	ring []WindowStats
	next int
	n    int // windows currently in the ring (≤ len(ring))
	seen int // windows ever observed
}

// NewRollingProfile returns a profile over the last `windows` completed
// windows.
func NewRollingProfile(name string, windows int) *RollingProfile {
	if windows <= 0 {
		windows = 64
	}
	return &RollingProfile{name: name, ring: make([]WindowStats, windows)}
}

// Add slides one completed window into the profile, displacing the
// oldest once the ring is full.
func (rp *RollingProfile) Add(ws WindowStats) {
	rp.ring[rp.next] = ws
	rp.next = (rp.next + 1) % len(rp.ring)
	if rp.n < len(rp.ring) {
		rp.n++
	}
	rp.seen++
}

// Windows reports how many windows the profile has ever observed.
func (rp *RollingProfile) Windows() int { return rp.seen }

// Profile computes the current rolling profile through the same flag
// assignment batch Categorize uses.
func (rp *RollingProfile) Profile() core.Profile {
	var sum, sumsq float64
	var count, length, numVars int
	classCounts := map[int]int{}
	for i := 0; i < rp.n; i++ {
		ws := rp.ring[i]
		sum += ws.Sum
		sumsq += ws.SumSq
		count += ws.Count
		if ws.Length > length {
			length = ws.Length
		}
		if ws.NumVars > numVars {
			numVars = ws.NumVars
		}
		if ws.Labeled {
			classCounts[ws.Label]++
		}
	}
	return core.ProfileFromStats(rp.name, length, rp.n, numVars, len(classCounts),
		covFromSums(sum, sumsq, count), cirFromCounts(classCounts))
}

// covFromSums is stats.CoefficientOfVariation over pre-aggregated
// one-pass sums: same variance formula (E[x²]−E[x]², clamped at zero),
// same zero-mean guards.
func covFromSums(sum, sumsq float64, count int) float64 {
	if count == 0 {
		return 0
	}
	n := float64(count)
	mean := sum / n
	v := sumsq/n - mean*mean
	if v < 0 {
		v = 0
	}
	std := math.Sqrt(v)
	if math.Abs(mean) < 1e-12 {
		if std < 1e-12 {
			return 0
		}
		return math.Inf(1)
	}
	return std / math.Abs(mean)
}

// cirFromCounts mirrors core.ClassImbalanceRatio over a label-count
// map: most populated class over least, 1 when fewer than one class has
// members.
func cirFromCounts(counts map[int]int) float64 {
	max, min := 0, int(^uint(0)>>1)
	for _, c := range counts {
		if c == 0 {
			continue
		}
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	if min == 0 || min == int(^uint(0)>>1) {
		return 1
	}
	return float64(max) / float64(min)
}
