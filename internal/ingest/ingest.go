// Package ingest opens the deployment workload the paper motivates ETSC
// with — maritime surveillance, where tens of thousands of vessels emit
// one unbounded interleaved event stream — on top of the repo's bounded
// batch machinery. A Pipeline demultiplexes entity-keyed events into
// per-entity tumbling windows with strictly bounded per-entity memory,
// classifies each window through the incremental Cursor contract (so a
// streamed decision is bit-identical to an offline Classify of the same
// window), monitors distribution drift on a rolling profile of completed
// windows, and on a drift trip retrains a fresh model on the recent
// labeled windows and hot-swaps it into the serving registry. Windows in
// flight keep the version they pinned; windows opened after the swap
// pick up the refreshed model.
//
// Backpressure is structural: Submit blocks on the owning shard's
// bounded queue, so a producer reading events off a network body slows
// to the pipeline's pace instead of growing an unbounded buffer.
package ingest

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/goetsc/goetsc/internal/core"
	"github.com/goetsc/goetsc/internal/evict"
	"github.com/goetsc/goetsc/internal/obs"
	"github.com/goetsc/goetsc/internal/persist"
	ts "github.com/goetsc/goetsc/internal/timeseries"
)

// Event is one entity-keyed stream point: one reading per variable for
// one entity at per-entity time index T. T must increase within an
// entity; an event at or before the entity's last accepted T is dropped
// as late/duplicate. Labeled events carry delayed ground truth for the
// entity's current window — the feed the retrainer learns from.
type Event struct {
	Entity  string    `json:"entity"`
	T       int       `json:"t"`
	Values  []float64 `json:"values"`
	Label   int       `json:"label,omitempty"`
	Labeled bool      `json:"labeled,omitempty"`
}

// Decision is one classified window: the early label, how much of the
// window the classifier consumed, and the model version that decided —
// the version the window pinned when it opened, which a concurrent hot
// swap never moves.
type Decision struct {
	Entity   string `json:"entity"`
	Window   int    `json:"window"`
	Label    int    `json:"label"`
	Consumed int    `json:"consumed"`
	Length   int    `json:"length"`
	Model    string `json:"model"`
	Version  int    `json:"version"`
}

// Pinned is one resolved model version: enough metadata to shape a
// window plus a Begin that builds a cursor already carrying whatever
// serialization the version's classifier needs (native cursors advance
// lock-free; fallback cursors arrive wrapped in the model's mutex).
type Pinned struct {
	Name       string
	Version    int
	Length     int
	NumVars    int
	NumClasses int
	Begin      func(in ts.Instance) core.Cursor
}

// Registry is the slice of the serving layer the pipeline needs:
// resolve the live version of a model, and swap a freshly retrained one
// in. *serve.Server implements it.
type Registry interface {
	Pin(name string) (Pinned, error)
	SwapModel(name string, algo core.EarlyClassifier, meta persist.Meta) (version int, err error)
}

// Config controls one Pipeline.
type Config struct {
	// Registry resolves and swaps model versions. Required.
	Registry Registry
	// Model is the registry name new windows pin. Required.
	Model string
	// Shards is the demux width: entities hash to a shard, each shard is
	// one goroutine with a bounded queue. 1 processes the stream in
	// arrival order — the deterministic setting tests use. Default
	// min(4, GOMAXPROCS) via New.
	Shards int
	// QueueDepth bounds each shard's queue; a full queue blocks Submit
	// (backpressure). Default 256.
	QueueDepth int
	// WindowLength is the tumbling-window size in points. 0 uses the
	// pinned model's training length.
	WindowLength int
	// MaxEntities bounds live entities across all shards; events for new
	// entities beyond it are shed (counted, journaled once). Default
	// 16384.
	MaxEntities int
	// EntityTTL is the idle eviction horizon EvictIdle sweeps with.
	// Default 10 minutes.
	EntityTTL time.Duration
	// Clock feeds entity last-seen stamps and the eviction sweep; nil
	// means time.Now. Shared with the serve layer's session TTL policy so
	// one fake clock drives both deterministically.
	Clock evict.Clock
	// Drift configures the rolling-profile drift detector; nil disables
	// detection (windows still feed the rolling profile).
	Drift *DriftConfig
	// Retrain configures background retraining on drift trips; nil
	// disables it (trips are still journaled).
	Retrain *RetrainConfig
	// OnDecision, when set, receives every decision from the deciding
	// shard's goroutine. Shards=1 makes the callback sequence
	// deterministic.
	OnDecision func(Decision)
	// Obs receives journal events and counters; nil is a no-op.
	Obs *obs.Collector
}

func (c Config) withDefaults() (Config, error) {
	if c.Registry == nil || c.Model == "" {
		return c, errors.New("ingest: Registry and Model are required")
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxEntities <= 0 {
		c.MaxEntities = 16384
	}
	if c.EntityTTL <= 0 {
		c.EntityTTL = 10 * time.Minute
	}
	return c, nil
}

// Stats is a snapshot of the pipeline's counters.
type Stats struct {
	Events          int64 `json:"events"`
	Late            int64 `json:"late"`      // dropped: at or before the entity's last T
	Malformed       int64 `json:"malformed"` // dropped: wrong variable count
	Shed            int64 `json:"shed"`      // dropped: entity cap reached
	EntitiesCreated int64 `json:"entities_created"`
	EntitiesEvicted int64 `json:"entities_evicted"`
	EntitiesLive    int64 `json:"entities_live"`
	Windows         int64 `json:"windows"`
	Decisions       int64 `json:"decisions"`
	DriftTrips      int64 `json:"drift_trips"`
	Retrains        int64 `json:"retrains"`
	RetrainFailures int64 `json:"retrain_failures"`
	Swaps           int64 `json:"swaps"`
}

type counters struct {
	events, late, malformed, shed       atomic.Int64
	created, evicted, live              atomic.Int64
	windows, decisions                  atomic.Int64
	trips, retrains, retrainFail, swaps atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Events: c.events.Load(), Late: c.late.Load(), Malformed: c.malformed.Load(),
		Shed: c.shed.Load(), EntitiesCreated: c.created.Load(),
		EntitiesEvicted: c.evicted.Load(), EntitiesLive: c.live.Load(),
		Windows: c.windows.Load(), Decisions: c.decisions.Load(),
		DriftTrips: c.trips.Load(), Retrains: c.retrains.Load(),
		RetrainFailures: c.retrainFail.Load(), Swaps: c.swaps.Load(),
	}
}

// entity is one live stream key's window state. All fields are owned by
// the entity's shard goroutine — no locking.
type entity struct {
	key      string
	window   int         // completed-window ordinal, 0-based
	pin      Pinned      // the version this window runs on
	values   [][]float64 // [variable][time]; inner slices reset, outer reused
	cur      core.Cursor
	decided  bool
	lastT    int
	started  bool // true once the first event of the current window landed
	lastSeen time.Time

	// Rolling-window accumulators, reset per window: one-pass sums that
	// reproduce stats.MeanStd exactly for this window's values.
	sum, sumsq float64
	count      int

	// Delayed ground truth for the current window (last labeled event
	// wins), feeding the retrain buffer at window completion.
	labeled   bool
	trueLabel int
}

// shardMsg carries either one event or a control barrier through a
// shard's queue, so controls are ordered with the data they follow.
type shardMsg struct {
	ev   Event
	ctl  func(*shard) // non-nil: control message
	done *sync.WaitGroup
}

type shard struct {
	p        *Pipeline
	queue    chan shardMsg
	entities map[string]*entity
}

// Pipeline is the continuous-ingest engine. Create with New, feed with
// Submit, stop with Close.
type Pipeline struct {
	cfg    Config
	shards []*shard
	wg     sync.WaitGroup
	closed atomic.Bool
	stats  counters

	shedOnce sync.Once // journal the entity cap once, not per event

	// Drift plane: central, touched once per completed window.
	driftMu    sync.Mutex
	profile    *RollingProfile
	detector   *Detector
	buffer     *labeledBuffer
	retraining atomic.Bool
	retrainWG  sync.WaitGroup
}

// New starts a pipeline: one goroutine per shard, queues bounded at
// QueueDepth.
func New(cfg Config) (*Pipeline, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	// Resolve the model once up front so a typo fails at construction,
	// not on the first event.
	pin, err := cfg.Registry.Pin(cfg.Model)
	if err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	if cfg.WindowLength <= 0 {
		cfg.WindowLength = pin.Length
	}
	if cfg.WindowLength <= 0 {
		return nil, fmt.Errorf("ingest: model %q has no training length; set WindowLength", cfg.Model)
	}
	p := &Pipeline{cfg: cfg, profile: NewRollingProfile(cfg.Model, profileWindows(cfg.Drift))}
	if cfg.Drift != nil {
		d, err := NewDetector(*cfg.Drift)
		if err != nil {
			return nil, err
		}
		p.detector = d
	}
	if cfg.Retrain != nil {
		if err := cfg.Retrain.validate(); err != nil {
			return nil, err
		}
		p.buffer = newLabeledBuffer(cfg.Retrain.BufferSize)
	}
	p.shards = make([]*shard, cfg.Shards)
	for i := range p.shards {
		sh := &shard{p: p, queue: make(chan shardMsg, cfg.QueueDepth), entities: map[string]*entity{}}
		p.shards[i] = sh
		p.wg.Add(1)
		go sh.run()
	}
	return p, nil
}

// profileWindows sizes the rolling profile: the detector's window count
// when drift detection is on, a stats-only default otherwise.
func profileWindows(d *DriftConfig) int {
	if d != nil && d.Windows > 0 {
		return d.Windows
	}
	return 64
}

// Submit hands one event to its entity's shard, blocking while the
// shard's queue is full — the pipeline's backpressure. It fails only on
// a closed pipeline.
func (p *Pipeline) Submit(ev Event) error {
	if p.closed.Load() {
		return errors.New("ingest: pipeline closed")
	}
	p.shards[shardOf(ev.Entity, len(p.shards))].queue <- shardMsg{ev: ev}
	return nil
}

// shardOf hashes an entity key to its owning shard — FNV-1a, the same
// stable keyed hashing the fault plane uses, so an entity's events stay
// ordered on one queue at any shard count.
func shardOf(key string, n int) int {
	if n == 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// Flush blocks until every event submitted before the call has been
// processed, including any synchronous retrain those events triggered.
func (p *Pipeline) Flush() {
	p.barrier(func(*shard) {})
	p.retrainWG.Wait()
}

// EvictIdle sweeps every shard for entities idle past the TTL, using
// the same clock-injectable policy the serve layer's session sweep
// uses, and returns how many were dropped. The sweep rides the shard
// queues, so it is ordered with the events around it.
func (p *Pipeline) EvictIdle() int {
	pol := evict.Policy{TTL: p.cfg.EntityTTL, Clock: p.cfg.Clock}
	cutoff := pol.Cutoff()
	var evicted atomic.Int64
	p.barrier(func(sh *shard) {
		for key, e := range sh.entities {
			if evict.ExpiredAt(e.lastSeen, cutoff) {
				delete(sh.entities, key)
				evicted.Add(1)
			}
		}
	})
	n := evicted.Load()
	if n > 0 {
		p.stats.evicted.Add(n)
		p.stats.live.Add(-n)
		p.cfg.Obs.Emit("ingest_entities_evicted", map[string]any{
			"model": p.cfg.Model, "evicted": n,
		})
	}
	return int(n)
}

// barrier runs fn on every shard's goroutine and waits for all of them.
func (p *Pipeline) barrier(fn func(*shard)) {
	var wg sync.WaitGroup
	for _, sh := range p.shards {
		wg.Add(1)
		sh.queue <- shardMsg{ctl: fn, done: &wg}
	}
	wg.Wait()
}

// Close drains the queues, stops the shards and waits for any
// in-flight retrain. Submit fails afterwards; Close is idempotent.
func (p *Pipeline) Close() {
	if !p.closed.CompareAndSwap(false, true) {
		return
	}
	for _, sh := range p.shards {
		close(sh.queue)
	}
	p.wg.Wait()
	p.retrainWG.Wait()
}

// Stats snapshots the pipeline counters.
func (p *Pipeline) Stats() Stats { return p.stats.snapshot() }

func (sh *shard) run() {
	defer sh.p.wg.Done()
	for msg := range sh.queue {
		if msg.ctl != nil {
			msg.ctl(sh)
			msg.done.Done()
			continue
		}
		sh.handle(msg.ev)
	}
}

// handle is the per-event hot path: route to the entity, reject
// late/malformed input, append, advance the cursor, and roll the window
// when it fills.
func (sh *shard) handle(ev Event) {
	p := sh.p
	p.stats.events.Add(1)
	e, ok := sh.entities[ev.Entity]
	if !ok {
		if p.stats.live.Load() >= int64(p.cfg.MaxEntities) {
			p.stats.shed.Add(1)
			p.shedOnce.Do(func() {
				p.cfg.Obs.Emit("ingest_entities_shed", map[string]any{
					"model": p.cfg.Model, "max_entities": p.cfg.MaxEntities,
				})
			})
			return
		}
		pin, err := p.cfg.Registry.Pin(p.cfg.Model)
		if err != nil {
			p.stats.malformed.Add(1)
			return
		}
		e = &entity{key: ev.Entity, pin: pin, lastT: -1}
		sh.entities[ev.Entity] = e
		p.stats.created.Add(1)
		p.stats.live.Add(1)
	}
	e.lastSeen = evict.Clock(p.cfg.Clock).Now()
	if ev.T <= e.lastT && e.started {
		// Late or duplicate: the entity already accepted this instant.
		p.stats.late.Add(1)
		return
	}
	nvars := e.pin.NumVars
	if nvars <= 0 {
		nvars = len(ev.Values)
	}
	if len(ev.Values) != nvars {
		// A malformed event does not consume its instant: a well-formed
		// retransmission of the same T is still accepted.
		p.stats.malformed.Add(1)
		return
	}
	e.lastT = ev.T
	if e.values == nil || len(e.values) != nvars {
		// First window, or a swap changed the variable count: fresh outer
		// slice, inner capacity fixed at the window length so the window
		// never reallocates mid-stream.
		e.values = make([][]float64, nvars)
		for i := range e.values {
			e.values[i] = make([]float64, 0, p.cfg.WindowLength)
		}
	}
	for i, v := range ev.Values {
		e.values[i] = append(e.values[i], v)
		e.sum += v
		e.sumsq += v * v
		e.count++
	}
	if ev.Labeled {
		e.labeled, e.trueLabel = true, ev.Label
	}
	n := len(e.values[0])
	if !e.started {
		// The cursor contract allows appends to the inner slices but not
		// a reallocation of the outer one — exactly how this buffer grows.
		e.cur = e.pin.Begin(ts.Instance{Values: e.values})
		e.started = true
	}
	if !e.decided {
		label, consumed, done := e.cur.Advance(n)
		// Final only when more data cannot change it: the cursor froze
		// the decision, the classifier committed strictly inside the
		// received prefix, or the window is full — the serving layer's
		// finality rule.
		if done || consumed < n || n >= p.cfg.WindowLength {
			e.decided = true
			if consumed > n {
				consumed = n
			}
			p.stats.decisions.Add(1)
			if p.cfg.OnDecision != nil {
				p.cfg.OnDecision(Decision{
					Entity: e.key, Window: e.window, Label: label, Consumed: consumed,
					Length: n, Model: e.pin.Name, Version: e.pin.Version,
				})
			}
		}
	}
	if n >= p.cfg.WindowLength {
		sh.completeWindow(e)
	}
}

// completeWindow closes the entity's full window: feed the drift plane,
// then reset the entity for the next window on the current live model
// version — this re-pin is where a hot swap reaches new windows.
func (sh *shard) completeWindow(e *entity) {
	p := sh.p
	p.stats.windows.Add(1)
	ws := WindowStats{
		Sum: e.sum, SumSq: e.sumsq, Count: e.count,
		Length: len(e.values[0]), NumVars: len(e.values),
		Label: e.trueLabel, Labeled: e.labeled,
	}
	var inst ts.Instance
	if e.labeled && p.buffer != nil {
		inst = copyInstance(e.values, e.trueLabel)
	}
	p.observeWindow(ws, inst)

	if pin, err := p.cfg.Registry.Pin(p.cfg.Model); err == nil {
		e.pin = pin
	}
	e.window++
	e.decided, e.started, e.labeled = false, false, false
	e.cur = nil
	e.sum, e.sumsq, e.count = 0, 0, 0
	for i := range e.values {
		e.values[i] = e.values[i][:0]
	}
}

// copyInstance snapshots a window into an owned instance for the
// retrain buffer — the entity's buffers are about to be reused.
func copyInstance(values [][]float64, label int) ts.Instance {
	cp := make([][]float64, len(values))
	for i, row := range values {
		cp[i] = append(make([]float64, 0, len(row)), row...)
	}
	return ts.Instance{Values: cp, Label: label}
}

// observeWindow feeds one completed window to the rolling profile and
// the drift detector, and kicks the retrainer on a trip.
func (p *Pipeline) observeWindow(ws WindowStats, labeled ts.Instance) {
	p.driftMu.Lock()
	p.profile.Add(ws)
	if ws.Labeled && p.buffer != nil {
		p.buffer.add(labeled)
	}
	trip := false
	why := ""
	if p.detector != nil {
		trip, why = p.detector.Observe(p.profile.Profile())
	}
	p.driftMu.Unlock()
	if !trip {
		return
	}
	p.stats.trips.Add(1)
	p.cfg.Obs.Emit("drift_detected", map[string]any{
		"model": p.cfg.Model, "reason": why,
	})
	p.maybeRetrain(why)
}
