package ingest

import (
	"math"
	"reflect"
	"testing"

	"github.com/goetsc/goetsc/internal/core"
	"github.com/goetsc/goetsc/internal/stats"
	"github.com/goetsc/goetsc/internal/synth"
	ts "github.com/goetsc/goetsc/internal/timeseries"
)

// windowStatsOf summarizes one instance the way the pipeline's hot path
// does: one-pass sums over every value of every variable.
func windowStatsOf(in ts.Instance) WindowStats {
	ws := WindowStats{Length: in.Length(), NumVars: len(in.Values), Label: in.Label, Labeled: true}
	for _, row := range in.Values {
		for _, v := range row {
			ws.Sum += v
			ws.SumSq += v * v
			ws.Count++
		}
	}
	return ws
}

// TestRollingProfileMatchesBatchCategorize is the incremental-equals-
// batch contract: feeding every instance of a dataset through the
// rolling profile as one completed window each must reproduce the batch
// core.Categorize of that dataset — identical category flags, CoV and
// CIR equal to floating-point tolerance.
func TestRollingProfileMatchesBatchCategorize(t *testing.T) {
	for _, tc := range []struct {
		name                          string
		vars, classes, height, length int
		seed                          int64
	}{
		{"univariate-binary", 1, 2, 40, 30, 3},
		{"multivariate", 3, 2, 24, 20, 5},
		{"multiclass", 1, 5, 50, 25, 9},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := synth.Dataset(tc.name, tc.vars, tc.classes, tc.height, tc.length, tc.seed)
			want := core.Categorize(d)

			rp := NewRollingProfile(tc.name, d.Len())
			for _, in := range d.Instances {
				rp.Add(windowStatsOf(in))
			}
			got := rp.Profile()

			if got.Height != want.Height || got.Length != want.Length ||
				got.NumVars != want.NumVars || got.NumClasses != want.NumClasses {
				t.Errorf("shape: got %d/%d/%d/%d, want %d/%d/%d/%d",
					got.Height, got.Length, got.NumVars, got.NumClasses,
					want.Height, want.Length, want.NumVars, want.NumClasses)
			}
			if math.Abs(got.CoV-want.CoV) > 1e-9*math.Max(1, math.Abs(want.CoV)) {
				t.Errorf("CoV: rolling %v vs batch %v", got.CoV, want.CoV)
			}
			if math.Abs(got.CIR-want.CIR) > 1e-12 {
				t.Errorf("CIR: rolling %v vs batch %v", got.CIR, want.CIR)
			}
			if !reflect.DeepEqual(got.Categories, want.Categories) {
				t.Errorf("categories: rolling %v vs batch %v", got.Categories, want.Categories)
			}
		})
	}
}

// TestRollingProfileSlides checks the ring displaces oldest-first: once
// full, the profile must equal a batch profile of only the last W
// windows.
func TestRollingProfileSlides(t *testing.T) {
	d := synth.Dataset("slide", 1, 2, 30, 20, 11)
	const W = 10
	rp := NewRollingProfile("slide", W)
	for _, in := range d.Instances {
		rp.Add(windowStatsOf(in))
	}
	if rp.Windows() != d.Len() {
		t.Fatalf("Windows() = %d, want %d observed", rp.Windows(), d.Len())
	}
	tail := &ts.Dataset{Name: "slide", Instances: d.Instances[d.Len()-W:]}
	want := core.Categorize(tail)
	got := rp.Profile()
	if got.Height != W {
		t.Errorf("height = %d, want ring width %d", got.Height, W)
	}
	if math.Abs(got.CoV-want.CoV) > 1e-9 {
		t.Errorf("CoV over last %d windows: rolling %v vs batch %v", W, got.CoV, want.CoV)
	}
	if math.Abs(got.CIR-want.CIR) > 1e-12 {
		t.Errorf("CIR over last %d windows: rolling %v vs batch %v", W, got.CIR, want.CIR)
	}
}

// TestCovFromSumsMatchesStats pins the aggregated one-pass formula to
// the batch stats.CoefficientOfVariation on the same values, including
// the zero-mean guards.
func TestCovFromSumsMatchesStats(t *testing.T) {
	cases := [][]float64{
		{1, 2, 3, 4, 5},
		{-3, 1, 4, -1, 5, -9, 2, 6},
		{2.5, 2.5, 2.5},     // zero variance
		{-1, 1, -1, 1},      // zero mean, nonzero std → +Inf
		{0, 0, 0},           // zero mean, zero std → 0
		{1e-9, -1e-9, 2e-9}, // tiny values around the guards
	}
	for _, xs := range cases {
		var sum, sumsq float64
		for _, v := range xs {
			sum += v
			sumsq += v * v
		}
		got := covFromSums(sum, sumsq, len(xs))
		want := stats.CoefficientOfVariation(xs)
		same := got == want || math.Abs(got-want) <= 1e-12 ||
			(math.IsInf(got, 1) && math.IsInf(want, 1))
		if !same {
			t.Errorf("covFromSums(%v) = %v, stats = %v", xs, got, want)
		}
	}
	if got := covFromSums(0, 0, 0); got != 0 {
		t.Errorf("covFromSums of no data = %v, want 0", got)
	}
}

func TestCIRFromCounts(t *testing.T) {
	for _, tc := range []struct {
		counts map[int]int
		want   float64
	}{
		{map[int]int{}, 1},                 // no labels yet
		{map[int]int{0: 7}, 1},             // single class
		{map[int]int{0: 6, 1: 2}, 3},       // 6:2
		{map[int]int{0: 5, 1: 5, 2: 1}, 5}, // most/least over three classes
		{map[int]int{0: 4, 1: 0, 2: 2}, 2}, // empty class skipped
	} {
		if got := cirFromCounts(tc.counts); got != tc.want {
			t.Errorf("cirFromCounts(%v) = %v, want %v", tc.counts, got, tc.want)
		}
	}
}
