package ingest

import (
	"math"
	"strings"
	"testing"

	"github.com/goetsc/goetsc/internal/core"
)

func profileCoV(cov float64) core.Profile { return core.Profile{CoV: cov, CIR: 1} }

// TestDriftDetectorTripPoint hand-computes the trip boundary: reference
// CoV 1.0, threshold 0.25 — a shift of exactly 0.25 must not trip
// (strict inequality), 0.2501 must.
func TestDriftDetectorTripPoint(t *testing.T) {
	d, err := NewDetector(DriftConfig{
		Reference: core.Profile{CoV: 1.0, CIR: 1},
		Windows:   4, MinWindows: 1, CoVJump: 0.25, Cooldown: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if trip, _ := d.Observe(profileCoV(1.25)); trip {
		t.Error("shift of exactly the threshold tripped; the test is strict >")
	}
	if trip, _ := d.Observe(profileCoV(0.76)); trip {
		t.Error("downward shift 0.24 tripped below threshold")
	}
	trip, why := d.Observe(profileCoV(1.2501))
	if !trip {
		t.Fatal("shift 0.2501 over threshold 0.25 did not trip")
	}
	if !strings.Contains(why, "cov") {
		t.Errorf("trip reason %q does not name the statistic", why)
	}
	if d.Trips() != 1 {
		t.Errorf("trips = %d, want 1", d.Trips())
	}
	// Downward shifts count too: |0.7−1.0| = 0.3. (One cooldown window
	// first.)
	d.Observe(profileCoV(0.7))
	if trip, _ := d.Observe(profileCoV(0.7)); !trip {
		t.Error("downward shift 0.3 did not trip")
	}
}

// TestDriftDetectorWarmup: with MinWindows = 3 the first two profiles
// are never evaluated, however extreme.
func TestDriftDetectorWarmup(t *testing.T) {
	d, err := NewDetector(DriftConfig{
		Reference: core.Profile{CoV: 1.0, CIR: 1},
		Windows:   8, MinWindows: 3, CoVJump: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if trip, _ := d.Observe(profileCoV(50)); trip {
			t.Fatalf("tripped on warmup window %d", i+1)
		}
	}
	if trip, _ := d.Observe(profileCoV(50)); !trip {
		t.Error("window 3 (= MinWindows) with a 49x shift did not trip")
	}
}

// TestDriftDetectorCooldown: after a trip the detector stays quiet for
// exactly Cooldown windows, then arms again.
func TestDriftDetectorCooldown(t *testing.T) {
	d, err := NewDetector(DriftConfig{
		Reference: core.Profile{CoV: 1.0, CIR: 1},
		Windows:   4, MinWindows: 1, CoVJump: 0.1, Cooldown: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if trip, _ := d.Observe(profileCoV(2)); !trip {
		t.Fatal("setup trip did not fire")
	}
	for i := 0; i < 3; i++ {
		if trip, _ := d.Observe(profileCoV(2)); trip {
			t.Fatalf("tripped during cooldown window %d of 3", i+1)
		}
	}
	if trip, _ := d.Observe(profileCoV(2)); !trip {
		t.Error("first window after cooldown did not re-trip")
	}
	if d.Trips() != 2 {
		t.Errorf("trips = %d, want 2", d.Trips())
	}
}

// TestDriftDetectorSelfCalibration: with a zero reference the profile
// at MinWindows becomes the reference, and shifts are measured against
// it from the next window on.
func TestDriftDetectorSelfCalibration(t *testing.T) {
	d, err := NewDetector(DriftConfig{
		Windows: 4, MinWindows: 2, CoVJump: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Observe(profileCoV(2.0)) // warmup
	if trip, _ := d.Observe(profileCoV(2.0)); trip {
		t.Fatal("calibration window itself tripped")
	}
	// Against the snapshotted reference 2.0: 2.8 shifts 0.4 (no trip),
	// 3.2 shifts 0.6 (trip).
	if trip, _ := d.Observe(profileCoV(2.8)); trip {
		t.Error("shift 0.4 below threshold tripped")
	}
	if trip, _ := d.Observe(profileCoV(3.2)); !trip {
		t.Error("shift 0.6 over threshold 0.5 did not trip")
	}
}

// TestDriftDetectorCIR: the class-imbalance test fires independently of
// the CoV test and names itself in the reason.
func TestDriftDetectorCIR(t *testing.T) {
	d, err := NewDetector(DriftConfig{
		Reference: core.Profile{CoV: 1.0, CIR: 2.0},
		Windows:   4, MinWindows: 1, CoVJump: 10, CIRJump: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// CIR 2.0 → 4.0 is a relative shift of 1.0 > 0.5; CoV unchanged.
	trip, why := d.Observe(core.Profile{CoV: 1.0, CIR: 4.0})
	if !trip {
		t.Fatal("CIR doubling did not trip")
	}
	if !strings.Contains(why, "cir") {
		t.Errorf("trip reason %q does not name cir", why)
	}
}

// TestDriftDetectorInfiniteStatistic: a zero-mean stretch drives the
// rolling CoV to +Inf; that must read as a full shift, not poison the
// comparison.
func TestDriftDetectorInfiniteStatistic(t *testing.T) {
	d, err := NewDetector(DriftConfig{
		Reference: core.Profile{CoV: 1.0, CIR: 1},
		Windows:   4, MinWindows: 1, CoVJump: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if trip, _ := d.Observe(profileCoV(math.Inf(1))); !trip {
		t.Error("infinite CoV did not trip")
	}
	if trip, _ := NewDetectorMust(t).Observe(profileCoV(math.NaN())); !trip {
		t.Error("NaN CoV did not trip")
	}
}

func NewDetectorMust(t *testing.T) *Detector {
	t.Helper()
	d, err := NewDetector(DriftConfig{
		Reference: core.Profile{CoV: 1.0, CIR: 1},
		Windows:   4, MinWindows: 1, CoVJump: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDriftConfigValidation(t *testing.T) {
	if _, err := NewDetector(DriftConfig{}); err == nil {
		t.Error("config with no thresholds accepted")
	}
	if _, err := NewDetector(DriftConfig{CoVJump: -0.1}); err == nil {
		t.Error("negative threshold accepted")
	}
	d, err := NewDetector(DriftConfig{CoVJump: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if d.cfg.Windows != 32 || d.cfg.MinWindows != 32 || d.cfg.Cooldown != 32 {
		t.Errorf("defaults = %d/%d/%d, want 32/32/32", d.cfg.Windows, d.cfg.MinWindows, d.cfg.Cooldown)
	}
}

func TestRelativeShift(t *testing.T) {
	for _, tc := range []struct {
		value, ref, want float64
	}{
		{1.5, 1.0, 0.5},
		{0.5, 1.0, 0.5},
		{2.0, 2.0, 0},
		{-1.0, 2.0, 1.5},
	} {
		if got := relativeShift(tc.value, tc.ref); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("relativeShift(%v, %v) = %v, want %v", tc.value, tc.ref, got, tc.want)
		}
	}
	if got := relativeShift(1, 0); got < 1e11 {
		t.Errorf("zero reference should amplify any shift, got %v", got)
	}
	if !math.IsInf(relativeShift(math.Inf(1), 1), 1) {
		t.Error("infinite value should be an infinite shift")
	}
}
