package weasel

import (
	"math"
	"math/rand"
	"testing"
)

// prefixTrainData builds a small separable two-class training set.
func prefixTrainData(rng *rand.Rand, n, L int) ([][]float64, []int) {
	series := make([][]float64, n)
	labels := make([]int, n)
	for i := range series {
		class := i % 2
		labels[i] = class
		s := make([]float64, L)
		for t := range s {
			x := float64(t) / float64(L)
			s[t] = float64(class)*2 + math.Sin(2*math.Pi*(1+float64(class))*x) + rng.NormFloat64()*0.1
		}
		series[i] = s
	}
	return series, labels
}

// TestPrefixEvaluatorMatchesPredict checks the incremental bag against
// the classic path: for several configurations and every prefix length,
// ProbaAt must equal PredictProbaSeries on the truncated series exactly
// (same words, same counts, same vector, same head — so the floats are
// bit-identical).
func TestPrefixEvaluatorMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const L = 30
	train, labels := prefixTrainData(rng, 14, L)

	configs := map[string]Config{
		"default":     {},
		"derivatives": {Derivatives: true},
		"nobigrams":   {NoBigrams: true},
		"sfanorm":     {SFANorm: true},
		"shortwords":  {WordLength: 6, MaxWindows: 3},
	}
	for name, cfg := range configs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			m := New(cfg)
			if err := m.FitSeries(train, labels, 2); err != nil {
				t.Fatalf("fit: %v", err)
			}
			probe := make([]float64, L+6) // longer than training: clamps exercised upstream
			for i := range probe {
				x := float64(i) / float64(L)
				probe[i] = 2 + math.Sin(2*math.Pi*2*x) + rng.NormFloat64()*0.1
			}

			pc := m.NewPrefixCache()
			ev := m.NewPrefixEvaluator(pc)
			if ev == nil {
				t.Fatal("evaluator unexpectedly nil")
			}
			for plen := 0; plen <= len(probe); plen++ {
				pc.Extend(probe[:plen])
				got := ev.ProbaAt(plen)
				want := m.PredictProbaSeries(probe[:plen])
				if len(got) != len(want) {
					t.Fatalf("plen %d: %d probs, want %d", plen, len(got), len(want))
				}
				for c := range want {
					if got[c] != want[c] {
						t.Fatalf("plen %d class %d: %v != %v (not bit-identical)", plen, c, got[c], want[c])
					}
				}
			}
		})
	}
}

// TestPrefixEvaluatorSharedCache checks that two models with identical
// SFA settings but different heads can share one cache — the TEASER /
// ECEC arrangement — and both stay exact.
func TestPrefixEvaluatorSharedCache(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const L = 26
	train, labels := prefixTrainData(rng, 12, L)

	cfgA := Config{Derivatives: true}
	cfgA.LogReg.Seed = 1
	cfgB := Config{Derivatives: true}
	cfgB.LogReg.Seed = 99
	a, b := New(cfgA), New(cfgB)
	if err := a.FitSeries(train, labels, 2); err != nil {
		t.Fatal(err)
	}
	// Model b trains on truncated series, like a checkpoint pipeline.
	short := make([][]float64, len(train))
	for i, s := range train {
		short[i] = s[:L/2]
	}
	if err := b.FitSeries(short, labels, 2); err != nil {
		t.Fatal(err)
	}

	probe := train[1]
	pc := a.NewPrefixCache()
	evA, evB := a.NewPrefixEvaluator(pc), b.NewPrefixEvaluator(pc)
	if evA == nil || evB == nil {
		t.Fatal("evaluator unexpectedly nil")
	}
	pc.Extend(probe)
	for plen := 1; plen <= L; plen += 3 {
		for tag, pair := range map[string][2][]float64{
			"a": {evA.ProbaAt(plen), a.PredictProbaSeries(probe[:plen])},
			"b": {evB.ProbaAt(plen), b.PredictProbaSeries(probe[:plen])},
		} {
			got, want := pair[0], pair[1]
			for c := range want {
				if got[c] != want[c] {
					t.Fatalf("model %s plen %d class %d: %v != %v", tag, plen, c, got[c], want[c])
				}
			}
		}
	}
}

// TestPrefixEvaluatorDeclines checks the configurations that cannot run
// incrementally are refused rather than silently wrong.
func TestPrefixEvaluatorDeclines(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	train, labels := prefixTrainData(rng, 10, 24)

	zn := New(Config{ZNormalize: true})
	if err := zn.FitSeries(train, labels, 2); err != nil {
		t.Fatal(err)
	}
	if zn.NewPrefixEvaluator(zn.NewPrefixCache()) != nil {
		t.Fatal("z-normalized model must decline incremental evaluation")
	}

	plain := New(Config{})
	if err := plain.FitSeries(train, labels, 2); err != nil {
		t.Fatal(err)
	}
	if plain.NewPrefixEvaluator(NewPrefixCache(9, true)) != nil {
		t.Fatal("mismatched cache settings must be refused")
	}
	if (&Model{}).NewPrefixEvaluator(plain.NewPrefixCache()) != nil {
		t.Fatal("unfitted model must be refused")
	}

	multi := NewMUSE(Config{})
	instances := make([][][]float64, len(train))
	for i, s := range train {
		instances[i] = [][]float64{s, s}
	}
	if err := multi.Fit(instances, labels, 2); err != nil {
		t.Fatal(err)
	}
	if multi.NewPrefixEvaluator(multi.NewPrefixCache()) != nil {
		t.Fatal("multivariate model must decline series evaluation")
	}
}
