package weasel

import (
	"math"
	"math/rand"
	"testing"
)

// freqSeries builds univariate series of two classes that differ in
// dominant frequency.
func freqSeries(rng *rand.Rand, nPerClass, length int) ([][]float64, []int) {
	var series [][]float64
	var labels []int
	for i := 0; i < nPerClass; i++ {
		for c, freq := range []float64{2, 6} {
			s := make([]float64, length)
			phase := rng.Float64() * 2 * math.Pi
			for t := range s {
				s[t] = math.Sin(2*math.Pi*freq*float64(t)/float64(length)+phase) + rng.NormFloat64()*0.1
			}
			series = append(series, s)
			labels = append(labels, c)
		}
	}
	return series, labels
}

func seriesAccuracy(m *Model, series [][]float64, labels []int) float64 {
	correct := 0
	for i, s := range series {
		p := m.PredictProbaSeries(s)
		best := 0
		for c, v := range p {
			if v > p[best] {
				best = c
			}
		}
		if best == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

func TestUnivariateFrequencyClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train, trainY := freqSeries(rng, 25, 64)
	test, testY := freqSeries(rng, 10, 64)
	m := New(Config{})
	if err := m.FitSeries(train, trainY, 2); err != nil {
		t.Fatal(err)
	}
	if acc := seriesAccuracy(m, test, testY); acc < 0.9 {
		t.Fatalf("test accuracy = %v", acc)
	}
	if m.NumFeatures() == 0 {
		t.Fatal("no features selected")
	}
}

func TestOffsetClassesWithoutNormalization(t *testing.T) {
	// Classes differ only in level; the no-z-norm default must separate
	// them (the paper's reason for dropping normalization).
	rng := rand.New(rand.NewSource(2))
	mkSet := func(n int) ([][]float64, []int) {
		var series [][]float64
		var labels []int
		for i := 0; i < n; i++ {
			c := i % 2
			s := make([]float64, 32)
			for t := range s {
				s[t] = float64(c)*10 + rng.NormFloat64()
			}
			series = append(series, s)
			labels = append(labels, c)
		}
		return series, labels
	}
	train, trainY := mkSet(40)
	test, testY := mkSet(20)
	m := New(Config{})
	if err := m.FitSeries(train, trainY, 2); err != nil {
		t.Fatal(err)
	}
	if acc := seriesAccuracy(m, test, testY); acc < 0.9 {
		t.Fatalf("offset test accuracy = %v", acc)
	}
	// With z-normalization the offset is erased and held-out accuracy
	// collapses to chance.
	zm := New(Config{ZNormalize: true})
	if err := zm.FitSeries(train, trainY, 2); err != nil {
		t.Fatal(err)
	}
	if acc := seriesAccuracy(zm, test, testY); acc > 0.8 {
		t.Fatalf("z-normalized model should fail on offset-only classes, got %v", acc)
	}
}

func TestMultivariateMUSE(t *testing.T) {
	// Class signal lives in variable 1 only; variable 0 is noise.
	rng := rand.New(rand.NewSource(3))
	var instances [][][]float64
	var labels []int
	for i := 0; i < 50; i++ {
		c := i % 2
		noise := make([]float64, 40)
		signal := make([]float64, 40)
		for t := range noise {
			noise[t] = rng.NormFloat64()
			signal[t] = math.Sin(2*math.Pi*float64(1+c*3)*float64(t)/40) + rng.NormFloat64()*0.1
		}
		instances = append(instances, [][]float64{noise, signal})
		labels = append(labels, c)
	}
	m := NewMUSE(Config{})
	if err := m.Fit(instances, labels, 2); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, inst := range instances {
		if m.Predict(inst) == labels[i] {
			correct++
		}
	}
	if correct < 45 {
		t.Fatalf("MUSE accuracy = %d/50", correct)
	}
}

func TestPredictOnShortPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	train, trainY := freqSeries(rng, 15, 64)
	m := New(Config{})
	if err := m.FitSeries(train, trainY, 2); err != nil {
		t.Fatal(err)
	}
	// Prefix shorter than every window size: must not panic, must return a
	// valid distribution.
	p := m.PredictProbaSeries(train[0][:3])
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("prefix proba sum = %v", sum)
	}
}

func TestProbabilitiesValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	train, trainY := freqSeries(rng, 10, 32)
	m := New(Config{})
	if err := m.FitSeries(train, trainY, 2); err != nil {
		t.Fatal(err)
	}
	for _, s := range train {
		p := m.PredictProbaSeries(s)
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 {
				t.Fatalf("probability out of range: %v", p)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("proba sum = %v", sum)
		}
	}
}

func TestBigramsHelpOrder(t *testing.T) {
	// Two classes share the same unigram content but differ in order:
	// low-then-high vs high-then-low frequency halves.
	rng := rand.New(rand.NewSource(6))
	mk := func(firstLow bool) []float64 {
		s := make([]float64, 64)
		for t := range s {
			freq := 2.0
			if (t < 32) != firstLow {
				freq = 8
			}
			s[t] = math.Sin(2*math.Pi*freq*float64(t)/32) + rng.NormFloat64()*0.05
		}
		return s
	}
	var series [][]float64
	var labels []int
	for i := 0; i < 30; i++ {
		series = append(series, mk(true), mk(false))
		labels = append(labels, 0, 1)
	}
	m := New(Config{})
	if err := m.FitSeries(series, labels, 2); err != nil {
		t.Fatal(err)
	}
	if acc := seriesAccuracy(m, series, labels); acc < 0.9 {
		t.Fatalf("order-sensitive accuracy = %v", acc)
	}
}

func TestFitErrors(t *testing.T) {
	m := New(Config{})
	if err := m.FitSeries(nil, nil, 2); err == nil {
		t.Fatal("empty accepted")
	}
	if err := m.FitSeries([][]float64{{1, 2}}, []int{0, 1}, 2); err == nil {
		t.Fatal("mismatch accepted")
	}
	if err := m.FitSeries([][]float64{{1, 2}}, []int{0}, 1); err == nil {
		t.Fatal("single class accepted")
	}
	if err := m.Fit([][][]float64{{}}, []int{0}, 2); err == nil {
		t.Fatal("no variables accepted")
	}
}

func TestWindowSizes(t *testing.T) {
	sizes := windowSizes(4, 64, 6)
	if len(sizes) != 6 || sizes[0] != 4 || sizes[len(sizes)-1] != 64 {
		t.Fatalf("sizes = %v", sizes)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Fatalf("sizes not strictly ascending: %v", sizes)
		}
	}
	// Tiny series.
	if s := windowSizes(4, 3, 6); len(s) != 1 || s[0] != 3 {
		t.Fatalf("tiny sizes = %v", s)
	}
	if s := windowSizes(4, 2, 6); len(s) != 1 || s[0] != 2 {
		t.Fatalf("min sizes = %v", s)
	}
	// Span smaller than requested count: no duplicates.
	s := windowSizes(4, 6, 8)
	if len(s) != 3 {
		t.Fatalf("small span sizes = %v", s)
	}
}

func TestVeryShortTraining(t *testing.T) {
	// Series shorter than the default min window: the model must train,
	// fit the training set, and return valid (possibly low-confidence)
	// distributions for unseen inputs. With four 3-point samples a word
	// mismatch on test data is expected behaviour, not a bug — the ETSC
	// pipelines interpret the uniform output as "wait for more data".
	series := [][]float64{{1, 2, 3}, {10, 11, 12}, {1.2, 2.2, 3.1}, {9, 10, 12}}
	labels := []int{0, 1, 0, 1}
	m := New(Config{})
	if err := m.FitSeries(series, labels, 2); err != nil {
		t.Fatal(err)
	}
	for i, s := range series {
		if m.Predict([][]float64{s}) != labels[i] {
			t.Fatalf("training instance %d misclassified", i)
		}
	}
	p := m.PredictProbaSeries([]float64{10, 11, 11.5})
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("unseen-input proba sum = %v", sum)
	}
}
