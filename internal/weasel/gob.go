package weasel

import (
	"bytes"
	"encoding/gob"
	"sort"

	"github.com/goetsc/goetsc/internal/logreg"
	"github.com/goetsc/goetsc/internal/sfa"
)

// The transform and vocabulary maps are keyed by unexported structs, so
// they are serialized as sorted slices of exported mirror entries.
type gobTransformEntry struct {
	Channel, Window int
	Transform       *sfa.Transform
}

type gobVocabEntry struct {
	Channel, Window int
	Bigram          bool
	W1, W2          uint64
	Index           int
}

// gobModel mirrors the unexported fields of a fitted model.
type gobModel struct {
	Cfg         Config
	ResolvedCfg Config
	NumClasses  int
	NumVars     int
	WindowSizes []int
	Transforms  []gobTransformEntry
	Vocab       []gobVocabEntry
	Head        *logreg.Model
}

// GobEncode serializes the fitted model.
func (m *Model) GobEncode() ([]byte, error) {
	g := gobModel{
		Cfg: m.Cfg, ResolvedCfg: m.cfg, NumClasses: m.numClasses,
		NumVars: m.numVars, WindowSizes: m.windowSizes, Head: m.head,
	}
	for k, t := range m.transforms {
		g.Transforms = append(g.Transforms, gobTransformEntry{
			Channel: k.channel, Window: k.window, Transform: t,
		})
	}
	sort.Slice(g.Transforms, func(i, j int) bool {
		a, b := g.Transforms[i], g.Transforms[j]
		if a.Channel != b.Channel {
			return a.Channel < b.Channel
		}
		return a.Window < b.Window
	})
	for k, idx := range m.vocab {
		g.Vocab = append(g.Vocab, gobVocabEntry{
			Channel: k.channel, Window: k.window, Bigram: k.bigram,
			W1: k.w1, W2: k.w2, Index: idx,
		})
	}
	sort.Slice(g.Vocab, func(i, j int) bool { return g.Vocab[i].Index < g.Vocab[j].Index })
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(g); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode restores a fitted model.
func (m *Model) GobDecode(data []byte) error {
	var g gobModel
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&g); err != nil {
		return err
	}
	m.Cfg = g.Cfg
	m.cfg = g.ResolvedCfg
	m.numClasses = g.NumClasses
	m.numVars = g.NumVars
	m.windowSizes = g.WindowSizes
	m.head = g.Head
	m.transforms = make(map[chanWin]*sfa.Transform, len(g.Transforms))
	for _, e := range g.Transforms {
		m.transforms[chanWin{channel: e.Channel, window: e.Window}] = e.Transform
	}
	m.vocab = make(map[featKey]int, len(g.Vocab))
	for _, e := range g.Vocab {
		m.vocab[featKey{channel: e.Channel, window: e.Window, bigram: e.Bigram, w1: e.W1, w2: e.W2}] = e.Index
	}
	return nil
}
