package weasel

import (
	"github.com/goetsc/goetsc/internal/sfa"
)

// PrefixCache shares the expensive per-prefix state of one growing
// univariate series across every WEASEL model that scores its prefixes:
// the first-difference (derivative) channel and one sliding-window
// Fourier coefficient stream per (channel, window size). Checkpoint
// ensembles (TEASER, ECEC) train many pipelines with identical SFA
// settings over the same series, so the Fourier work — the dominant cost
// of a WEASEL evaluation — is paid once here and reused by every
// pipeline's PrefixEvaluator.
//
// The cache copies appended points, so callers may hand it a slice whose
// backing array is later reallocated; values at already-seen positions
// must not change (prefix extension).
type PrefixCache struct {
	wordLength int
	norm       bool

	series  []float64
	diffs   []float64
	streams map[chanWin]*sfa.CoeffStream
}

// NewPrefixCache returns an empty cache for models whose resolved SFA
// settings match (word length and DC-norm decide the coefficient
// vectors; everything downstream is per-model).
func NewPrefixCache(wordLength int, norm bool) *PrefixCache {
	return &PrefixCache{
		wordLength: wordLength,
		norm:       norm,
		streams:    map[chanWin]*sfa.CoeffStream{},
	}
}

// NewPrefixCache returns a cache keyed to this model's resolved SFA
// settings, shareable with every model NewPrefixEvaluator accepts.
func (m *Model) NewPrefixCache() *PrefixCache {
	return NewPrefixCache(m.cfg.WordLength, m.cfg.SFANorm)
}

// Reserve pre-grows the cache's point buffers to hold n points, so a
// streaming session sized at model registration appends without ever
// reallocating mid-stream.
func (pc *PrefixCache) Reserve(n int) {
	if cap(pc.series) < n {
		s := make([]float64, len(pc.series), n)
		copy(s, pc.series)
		pc.series = s
	}
	if n > 0 && cap(pc.diffs) < n-1 {
		d := make([]float64, len(pc.diffs), n-1)
		copy(d, pc.diffs)
		pc.diffs = d
	}
}

// Extend appends any new points of series (a prefix-extension of what
// previous calls saw) to the cache, growing the derivative channel in
// step.
func (pc *PrefixCache) Extend(series []float64) {
	for i := len(pc.series); i < len(series); i++ {
		pc.series = append(pc.series, series[i])
		if i > 0 {
			pc.diffs = append(pc.diffs, series[i]-series[i-1])
		}
	}
}

// Len reports how many points the cache has seen.
func (pc *PrefixCache) Len() int { return len(pc.series) }

// fakeDeriv is the placeholder derivative channel channelSeries emits
// for prefixes too short to have a first difference.
var fakeDeriv = []float64{0}

// channel returns channel ch of the prefix of length plen, mirroring
// channelSeries: channel 0 is the raw series, channel 1 the first
// differences (a literal [0] when the prefix has fewer than two points).
func (pc *PrefixCache) channel(ch, plen int) []float64 {
	if ch == 0 {
		return pc.series[:plen]
	}
	if plen <= 1 {
		return fakeDeriv
	}
	return pc.diffs[:plen-1]
}

// stream returns the shared coefficient stream for (channel, window),
// creating it on first use.
func (pc *PrefixCache) stream(cw chanWin) *sfa.CoeffStream {
	cs, ok := pc.streams[cw]
	if !ok {
		cs = sfa.NewCoeffStream(cw.window, pc.wordLength, pc.norm)
		pc.streams[cw] = cs
	}
	return cs
}

// PrefixEvaluator scores growing prefixes of one univariate series with
// a fitted model, maintaining the bag-of-patterns incrementally: sliding
// windows only ever append as the prefix grows (unigram words and the
// lag-w bigrams they complete), so each step costs the new windows
// instead of re-bagging the whole prefix. The one non-monotone feature —
// the single truncated word a channel shorter than the window produces —
// is remove-and-replaced. ProbaAt is bit-identical to
// PredictProbaSeries(series[:plen]): same words in the same order, same
// integer counts, same vector, same head.
type PrefixEvaluator struct {
	m    *Model
	pc   *PrefixCache
	bag  map[featKey]float64
	plen int

	states map[chanWin]*cwState

	// vec and proba are per-evaluator scratch for the vocabulary vector
	// and the head's output, so steady-state ProbaAt calls allocate
	// nothing beyond new bag entries.
	vec   []float64
	proba []float64
}

// cwState is the per-(channel, window) progress of one evaluator.
type cwState struct {
	words    []uint64 // words consumed so far, by window start offset
	shortKey featKey  // outstanding truncated-channel word, if any
	hasShort bool
}

// NewPrefixEvaluator returns an evaluator for this fitted model over the
// cache's series, or nil when the model cannot be evaluated
// incrementally: whole-series z-normalization rescales every point as
// the prefix grows (no prefix extension to exploit), multivariate models
// take instances rather than one series, and a cache fit to different
// SFA settings would feed the model foreign coefficients.
func (m *Model) NewPrefixEvaluator(pc *PrefixCache) *PrefixEvaluator {
	if m.head == nil || m.numVars != 1 || m.cfg.ZNormalize {
		return nil
	}
	if m.cfg.WordLength != pc.wordLength || m.cfg.SFANorm != pc.norm {
		return nil
	}
	return &PrefixEvaluator{
		m:      m,
		pc:     pc,
		bag:    map[featKey]float64{},
		plen:   -1,
		states: map[chanWin]*cwState{},
	}
}

// ProbaAt returns the class probabilities of the prefix of length plen,
// exactly PredictProbaSeries(series[:plen]). Calls must not decrease
// plen; plen is clamped to the points the cache has seen.
func (e *PrefixEvaluator) ProbaAt(plen int) []float64 {
	if plen > e.pc.Len() {
		plen = e.pc.Len()
	}
	if plen < e.plen {
		plen = e.plen
	}
	nChannels := 1
	if e.m.cfg.Derivatives {
		nChannels = 2
	}
	for ch := 0; ch < nChannels; ch++ {
		chSeries := e.pc.channel(ch, plen)
		for _, w := range e.m.windowSizes {
			cw := chanWin{channel: ch, window: w}
			tr, ok := e.m.transforms[cw]
			if !ok {
				continue
			}
			st := e.states[cw]
			if st == nil {
				st = &cwState{}
				e.states[cw] = st
			}
			if len(chSeries) <= w {
				// Truncated channel: one word, replaced on every growth
				// step (its coefficients cover the whole channel, so they
				// change as it grows).
				if st.hasShort {
					e.dec(st.shortKey)
				}
				coeffs := sfa.SlidingCoefficients(chSeries, w, e.m.cfg.WordLength, e.m.cfg.SFANorm)
				key := featKey{channel: ch, window: w, w1: tr.WordFromCoefficients(coeffs[0])}
				e.bag[key]++
				st.shortKey, st.hasShort = key, true
				continue
			}
			if st.hasShort {
				e.dec(st.shortKey)
				st.hasShort = false
			}
			cs := e.pc.stream(cw)
			cs.Extend(chSeries)
			for i := len(st.words); i <= len(chSeries)-w; i++ {
				word := tr.WordFromCoefficients(cs.Coeff(i))
				st.words = append(st.words, word)
				e.bag[featKey{channel: ch, window: w, w1: word}]++
				if !e.m.cfg.NoBigrams && i >= w {
					e.bag[featKey{channel: ch, window: w, bigram: true, w1: st.words[i-w], w2: word}]++
				}
			}
		}
	}
	e.plen = plen
	e.vec = e.m.vectorInto(e.vec, e.bag)
	e.proba = e.m.head.PredictProbaInto(e.proba, e.vec)
	return e.proba
}

// dec removes one count of k from the bag, deleting exhausted entries
// (counts are exact small integers, so the comparison is safe).
func (e *PrefixEvaluator) dec(k featKey) {
	if c := e.bag[k] - 1; c <= 0 {
		delete(e.bag, k)
	} else {
		e.bag[k] = c
	}
}
