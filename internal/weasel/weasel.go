// Package weasel implements the WEASEL time-series classifier (Schäfer &
// Leser, CIKM 2017) and its multivariate extension WEASEL+MUSE: sliding
// windows of several sizes are symbolized with SFA, unigram and bigram word
// counts form a sparse bag-of-patterns, chi-squared filtering prunes the
// vocabulary, and a logistic-regression head produces probabilities.
//
// Following the paper's streaming argument (Sections 3.6 and 4), the whole
// series z-normalization step of the original implementations is disabled
// by default and can be re-enabled via Config.ZNormalize.
package weasel

import (
	"fmt"
	"math"
	"sort"

	"github.com/goetsc/goetsc/internal/logreg"
	"github.com/goetsc/goetsc/internal/sfa"
	"github.com/goetsc/goetsc/internal/stats"
	"github.com/goetsc/goetsc/internal/timeseries"
)

// Config controls the WEASEL pipeline. The zero value selects defaults.
type Config struct {
	// WordLength is the SFA word length; default 4.
	WordLength int
	// Alphabet is the SFA alphabet size; default 4.
	Alphabet int
	// MinWindow is the smallest window size; default 4 (clamped to the
	// series length).
	MinWindow int
	// MaxWindows bounds how many window sizes are used; default 6.
	MaxWindows int
	// Bigrams adds adjacent-word pairs to the bag; default on (disable
	// with NoBigrams).
	NoBigrams bool
	// Chi2Threshold prunes features whose chi-squared score with the class
	// is below the threshold; default 2.
	Chi2Threshold float64
	// MaxFeatures caps the vocabulary (top chi-squared wins); default 8192.
	MaxFeatures int
	// SFANorm drops the DC Fourier coefficient in SFA words.
	SFANorm bool
	// ZNormalize re-enables whole-series z-normalization (off by default;
	// see the package comment).
	ZNormalize bool
	// MaxFitWindows caps how many windows are used to fit SFA boundaries
	// per window size (subsampled by stride); default 20000.
	MaxFitWindows int
	// Derivatives adds first-difference channels (always on for MUSE).
	Derivatives bool
	// LogReg configures the linear head.
	LogReg logreg.Config
}

func (c Config) withDefaults() Config {
	if c.WordLength <= 0 {
		c.WordLength = 4
	}
	if c.Alphabet <= 0 {
		c.Alphabet = 4
	}
	if c.MinWindow <= 0 {
		c.MinWindow = 4
	}
	if c.MaxWindows <= 0 {
		c.MaxWindows = 6
	}
	if c.Chi2Threshold == 0 {
		c.Chi2Threshold = 2
	}
	if c.MaxFeatures <= 0 {
		c.MaxFeatures = 8192
	}
	if c.MaxFitWindows <= 0 {
		c.MaxFitWindows = 20000
	}
	if c.LogReg.Epochs == 0 {
		c.LogReg.Epochs = 80
	}
	return c
}

// featKey identifies one bag-of-patterns dimension.
type featKey struct {
	channel int
	window  int
	bigram  bool
	w1, w2  uint64
}

type chanWin struct {
	channel int
	window  int
}

// Model is a fitted WEASEL / WEASEL+MUSE classifier.
type Model struct {
	Cfg Config

	cfg         Config
	numClasses  int
	numVars     int
	windowSizes []int
	transforms  map[chanWin]*sfa.Transform
	vocab       map[featKey]int
	head        *logreg.Model
}

// New returns an untrained model.
func New(cfg Config) *Model { return &Model{Cfg: cfg} }

// FitSeries trains on univariate series.
func (m *Model) FitSeries(series [][]float64, labels []int, numClasses int) error {
	instances := make([][][]float64, len(series))
	for i, s := range series {
		instances[i] = [][]float64{s}
	}
	return m.Fit(instances, labels, numClasses)
}

// Fit trains on (possibly multivariate) instances, indexed
// [instance][variable][time].
func (m *Model) Fit(instances [][][]float64, labels []int, numClasses int) error {
	if len(instances) == 0 {
		return fmt.Errorf("weasel: no instances")
	}
	if len(instances) != len(labels) {
		return fmt.Errorf("weasel: %d instances but %d labels", len(instances), len(labels))
	}
	if numClasses < 2 {
		return fmt.Errorf("weasel: need at least 2 classes, got %d", numClasses)
	}
	cfg := m.Cfg.withDefaults()
	m.cfg = cfg
	m.numClasses = numClasses
	m.numVars = len(instances[0])
	if m.numVars == 0 {
		return fmt.Errorf("weasel: instances have no variables")
	}

	channels := m.channelSeriesAll(instances)
	maxLen := 0
	for _, inst := range channels {
		for _, ch := range inst {
			if len(ch) > maxLen {
				maxLen = len(ch)
			}
		}
	}
	m.windowSizes = windowSizes(cfg.MinWindow, maxLen, cfg.MaxWindows)

	// Fit one SFA transform per (channel, window size) and build the
	// training bags in the same pass. Sliding-window Fourier values are
	// computed once per series with the incremental ("momentary") DFT —
	// the optimization that makes WEASEL tractable on wide series.
	nChannels := len(channels[0])
	m.transforms = make(map[chanWin]*sfa.Transform)
	bags := make([]map[featKey]float64, len(channels))
	for i := range bags {
		bags[i] = make(map[featKey]float64)
	}
	for ch := 0; ch < nChannels; ch++ {
		for _, w := range m.windowSizes {
			// One incremental-DFT pass per series.
			coeffsPer := make([][][]float64, len(channels))
			total := 0
			for i := range channels {
				coeffsPer[i] = sfa.SlidingCoefficients(channels[i][ch], w, cfg.WordLength, cfg.SFANorm)
				total += len(coeffsPer[i])
			}
			// Subsampled boundary fitting.
			stride := 1
			if total > cfg.MaxFitWindows {
				stride = total/cfg.MaxFitWindows + 1
			}
			var fitCoeffs [][]float64
			var fitLabels []int
			for i := range channels {
				for k := 0; k < len(coeffsPer[i]); k += stride {
					fitCoeffs = append(fitCoeffs, coeffsPer[i][k])
					fitLabels = append(fitLabels, labels[i])
				}
			}
			tr, err := sfa.FitFromCoefficients(fitCoeffs, fitLabels, numClasses, sfa.Config{
				WordLength: cfg.WordLength,
				Alphabet:   cfg.Alphabet,
				Norm:       cfg.SFANorm,
			})
			if err != nil {
				return fmt.Errorf("weasel: channel %d window %d: %w", ch, w, err)
			}
			m.transforms[chanWin{ch, w}] = tr
			// Words + bags from the same coefficient vectors.
			for i := range channels {
				words := make([]uint64, len(coeffsPer[i]))
				for k, c := range coeffsPer[i] {
					words[k] = tr.WordFromCoefficients(c)
					bags[i][featKey{channel: ch, window: w, w1: words[k]}]++
				}
				if !cfg.NoBigrams {
					for k := w; k < len(words); k++ {
						bags[i][featKey{channel: ch, window: w, bigram: true, w1: words[k-w], w2: words[k]}]++
					}
				}
			}
		}
	}

	// Accumulate per-feature per-class presence counts for chi-squared
	// selection.
	classTotals := make([]float64, numClasses)
	featClassCounts := make(map[featKey][]float64)
	for i := range channels {
		classTotals[labels[i]]++
		for k := range bags[i] {
			counts, ok := featClassCounts[k]
			if !ok {
				counts = make([]float64, numClasses)
				featClassCounts[k] = counts
			}
			counts[labels[i]]++
		}
	}

	// Chi-squared of presence/absence against the class.
	type scored struct {
		key   featKey
		score float64
	}
	var candidates []scored
	for k, present := range featClassCounts {
		table := make([][]float64, 2)
		table[0] = present
		absent := make([]float64, numClasses)
		for c := range absent {
			absent[c] = classTotals[c] - present[c]
		}
		table[1] = absent
		if s := stats.ChiSquared(table); s >= cfg.Chi2Threshold {
			candidates = append(candidates, scored{key: k, score: s})
		}
	}
	if len(candidates) == 0 {
		// No feature cleared the bar; keep the highest-scoring few so the
		// model remains usable.
		for k, present := range featClassCounts {
			table := [][]float64{present, make([]float64, numClasses)}
			for c := range table[1] {
				table[1][c] = classTotals[c] - present[c]
			}
			candidates = append(candidates, scored{key: k, score: stats.ChiSquared(table)})
		}
	}
	sort.Slice(candidates, func(a, b int) bool {
		if candidates[a].score != candidates[b].score {
			return candidates[a].score > candidates[b].score
		}
		return featLess(candidates[a].key, candidates[b].key)
	})
	if len(candidates) > cfg.MaxFeatures {
		candidates = candidates[:cfg.MaxFeatures]
	}
	m.vocab = make(map[featKey]int, len(candidates))
	for i, c := range candidates {
		m.vocab[c.key] = i
	}
	if len(m.vocab) == 0 {
		return fmt.Errorf("weasel: empty vocabulary after selection")
	}

	// Train the linear head on the selected features.
	X := make([][]float64, len(channels))
	for i := range channels {
		X[i] = m.vector(bags[i])
	}
	m.head = logreg.New(cfg.LogReg)
	return m.head.Fit(X, labels, numClasses)
}

// PredictProbaSeries returns class probabilities for one univariate series.
func (m *Model) PredictProbaSeries(series []float64) []float64 {
	return m.PredictProba([][]float64{series})
}

// PredictProba returns class probabilities for one instance
// ([variable][time]).
func (m *Model) PredictProba(instance [][]float64) []float64 {
	channels := m.channelSeries(instance)
	return m.head.PredictProba(m.vector(m.bag(channels)))
}

// Predict returns the most probable class for one instance.
func (m *Model) Predict(instance [][]float64) int {
	return stats.ArgMax(m.PredictProba(instance))
}

// NumFeatures reports the selected vocabulary size.
func (m *Model) NumFeatures() int { return len(m.vocab) }

// channelSeriesAll expands all instances into channel series.
func (m *Model) channelSeriesAll(instances [][][]float64) [][][]float64 {
	out := make([][][]float64, len(instances))
	for i, inst := range instances {
		out[i] = m.channelSeries(inst)
	}
	return out
}

// channelSeries expands one instance into its channels: each variable,
// optionally z-normalized, plus its first-difference series when
// Derivatives is enabled (the MUSE construction).
func (m *Model) channelSeries(instance [][]float64) [][]float64 {
	cfg := m.cfg
	var out [][]float64
	for _, v := range instance {
		s := v
		if cfg.ZNormalize {
			s = append([]float64(nil), v...)
			timeseries.ZNormalizeRow(s)
		}
		out = append(out, s)
		if cfg.Derivatives && len(s) > 1 {
			d := make([]float64, len(s)-1)
			for t := 1; t < len(s); t++ {
				d[t-1] = s[t] - s[t-1]
			}
			out = append(out, d)
		} else if cfg.Derivatives {
			out = append(out, []float64{0})
		}
	}
	return out
}

// bag computes the bag-of-patterns of one instance's channels using the
// incremental sliding DFT.
func (m *Model) bag(channels [][]float64) map[featKey]float64 {
	bag := make(map[featKey]float64)
	for ch, series := range channels {
		for _, w := range m.windowSizes {
			tr, ok := m.transforms[chanWin{ch, w}]
			if !ok {
				continue
			}
			words := tr.WordsSliding(series, w)
			for _, word := range words {
				bag[featKey{channel: ch, window: w, w1: word}]++
			}
			if !m.cfg.NoBigrams {
				// Bigram = words one full window apart.
				for i := w; i < len(words); i++ {
					bag[featKey{channel: ch, window: w, bigram: true, w1: words[i-w], w2: words[i]}]++
				}
			}
		}
	}
	return bag
}

// vector projects a bag onto the selected vocabulary.
func (m *Model) vector(bag map[featKey]float64) []float64 {
	return m.vectorInto(nil, bag)
}

// vectorInto fills dst (grown as needed) with the vocabulary vector of
// the bag, zeroing entries the bag does not touch.
func (m *Model) vectorInto(dst []float64, bag map[featKey]float64) []float64 {
	if cap(dst) < len(m.vocab) {
		dst = make([]float64, len(m.vocab))
	} else {
		dst = dst[:len(m.vocab)]
		for i := range dst {
			dst[i] = 0
		}
	}
	for k, v := range bag {
		if idx, ok := m.vocab[k]; ok {
			// Square-root scaling tames bursty counts.
			dst[idx] = math.Sqrt(v)
		}
	}
	return dst
}

func featLess(a, b featKey) bool {
	if a.channel != b.channel {
		return a.channel < b.channel
	}
	if a.window != b.window {
		return a.window < b.window
	}
	if a.bigram != b.bigram {
		return !a.bigram
	}
	if a.w1 != b.w1 {
		return a.w1 < b.w1
	}
	return a.w2 < b.w2
}

// windowSizes picks up to maxWindows sizes in [minWin, maxLen], linearly
// spaced, always including the extremes.
func windowSizes(minWin, maxLen, maxWindows int) []int {
	if maxLen < 2 {
		maxLen = 2
	}
	if minWin > maxLen {
		minWin = maxLen
	}
	if minWin < 2 {
		minWin = 2
	}
	span := maxLen - minWin
	if span == 0 {
		return []int{minWin}
	}
	n := maxWindows
	if n > span+1 {
		n = span + 1
	}
	sizes := make([]int, 0, n)
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		w := minWin + span*i/(n-1)
		if !seen[w] {
			seen[w] = true
			sizes = append(sizes, w)
		}
	}
	return sizes
}

// NewMUSE returns a WEASEL+MUSE configuration: derivatives enabled, suited
// for multivariate instances.
func NewMUSE(cfg Config) *Model {
	cfg.Derivatives = true
	return New(cfg)
}
